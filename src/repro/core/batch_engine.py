"""Generalized vectorized scheduler engine (the NumPy fast path).

:class:`BatchScheduler` is a drop-in twin of
:class:`~repro.core.scheduler.ShareStreamsScheduler` that holds every
per-slot attribute — latched deadlines/arrivals, DWCS window counters
``(x', y')``, EDF winner bias, performance counters — as NumPy arrays
and executes a whole SCHEDULE + PRIORITY_UPDATE pair as a handful of
array operations:

1. **Rank** — one :func:`numpy.lexsort` over the Table 2 key cascade
   (validity, deadline, window-constraint class/ratio, denominator,
   numerator, arrival, stream ID) produces a total-order rank per slot.
   The pairwise Decision-block comparator is consistent with this
   linear order (the documented :func:`repro.core.rules.ordering_key`
   equivalence), so any compare-exchange outcome equals a rank
   comparison.
2. **Network emulation** — the recirculating shuffle-exchange passes
   (paper schedule) or the Batcher bitonic schedule are replayed as
   index permutations + vectorized rank compare-exchanges, reproducing
   the *exact* emitted block — including the partial order the log2(N)
   paper recirculation leaves below the certified maximum.
3. **PRIORITY_UPDATE** — miss registration and the DWCS loser window
   adjustments run vectorized over all slots; the circulated winner's
   consume/adjust path mirrors the Register Base block update rules.

The object model remains the trusted oracle: every behavior here is
cross-validated cycle-by-cycle in :mod:`repro.core.differential` and
``tests/test_differential_engines.py`` (see ``docs/ENGINES.md`` for the
oracle/fast-path contract).

Wrapped (16-bit serial) arithmetic is supported by rebasing serials
around ``now`` — exact under the serial-number contract the hardware
already requires (live deadlines/arrivals within half the 16-bit
horizon of each other).

For self-advancing periodic workloads (Table 3, the throughput
benches) :meth:`BatchScheduler.run_periodic` replaces the per-cycle
Python enqueue loop with pure counter arithmetic, which is where the
order-of-magnitude speedups at large stream counts come from.
"""

from __future__ import annotations

import functools
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.control import ControlUnit
from repro.core.fields import (
    ARRIVAL_FIELD,
    DEADLINE_FIELD,
    LOSS_DEN_FIELD,
)
from repro.core.register_block import PendingPacket, SlotCounters
from repro.core.scheduler import DecisionOutcome
from repro.observability.hooks import resolve_observer

__all__ = [
    "BatchScheduler",
    "BatchSlotView",
    "PeriodicRunResult",
    "build_bitonic_passes",
    "make_scheduler",
]

# SchedulingMode -> small integer codes for vectorized masking.
_MODE_CODE = {
    SchedulingMode.DWCS: 0,
    SchedulingMode.EDF: 1,
    SchedulingMode.STATIC_PRIORITY: 2,
    SchedulingMode.FAIR_SHARE: 3,
    SchedulingMode.SERVICE_TAG: 4,
}
_DWCS_LIKE = (0, 3)  # DWCS + FAIR_SHARE share the window-update path

_DL_MASK = DEADLINE_FIELD.mask
_DL_MOD = DEADLINE_FIELD.modulus
_DL_HALF = DEADLINE_FIELD.half
_ARR_MASK = ARRIVAL_FIELD.mask
_ARR_MOD = ARRIVAL_FIELD.modulus
_ARR_HALF = ARRIVAL_FIELD.half
_Y_MAX = LOSS_DEN_FIELD.mask


@functools.lru_cache(maxsize=None)
def build_bitonic_passes(
    n: int,
) -> tuple[tuple[np.ndarray, np.ndarray, np.ndarray], ...]:
    """Batcher pass geometry as (index, partner, ascending) arrays.

    Pure function of the slot count, memoized so every engine instance
    at width ``n`` — sequential, batch or tensor — shares one schedule
    instead of re-deriving the ``O(n log^2 n)`` geometry per
    construction.  The arrays are treated as read-only by all callers.
    """
    passes = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            idx, partner, asc = [], [], []
            for i in range(n):
                p = i ^ j
                if p <= i:
                    continue
                idx.append(i)
                partner.append(p)
                asc.append((i & k) == 0)
            passes.append(
                (
                    np.asarray(idx, dtype=np.int64),
                    np.asarray(partner, dtype=np.int64),
                    np.asarray(asc, dtype=bool),
                )
            )
            j //= 2
        k *= 2
    return tuple(passes)


@functools.lru_cache(maxsize=None)
def build_shuffle_permutation(n: int) -> np.ndarray:
    """Perfect-shuffle index permutation for ``n`` slots (read-only)."""
    half = n // 2
    shuffle = np.empty(n, dtype=np.int64)
    shuffle[0::2] = np.arange(half)
    shuffle[1::2] = np.arange(half) + half
    return shuffle


@dataclass(frozen=True, slots=True)
class PeriodicRunResult:
    """Aggregate outcome of a :meth:`BatchScheduler.run_periodic` run."""

    n_streams: int
    decision_cycles: int
    wins: np.ndarray  # per-stream circulated-winner counts
    misses: np.ndarray  # per-stream missed-deadline registrations
    serviced: np.ndarray  # per-stream consumed-packet counts
    frames_scheduled: int
    winners: np.ndarray | None = None  # circulated sid per cycle (-1: idle)


def make_scheduler(
    config: ArchConfig,
    streams: list[StreamConfig] | None = None,
    *,
    engine: str = "reference",
    trace_timeline: bool = False,
    trace=None,
    observer=None,
    engine_backend: str = "numpy",
):
    """Instantiate a scheduler engine by name.

    ``engine="reference"`` builds the cycle-level object model (the
    oracle); ``engine="batch"`` builds the vectorized
    :class:`BatchScheduler`; ``engine="tensor"`` builds a
    single-scenario slice of the scenario-tensorized
    :class:`~repro.core.tensor_engine.CampaignEngine`.  All expose the
    same ``decision_cycle`` / ``enqueue`` / ``slot`` / ``counters``
    surface — including the ``observer`` telemetry hook — and are
    asserted behaviorally identical by :mod:`repro.core.differential`.

    ``engine_backend`` selects the array namespace for the tensor
    engine (see :mod:`repro.core.backend`) — ``"numba"`` routes whole
    runs through the fused compiled kernels of :mod:`repro.core.jit`;
    the reference and batch engines are NumPy-only and reject any
    other value.
    """
    if engine != "tensor" and engine_backend != "numpy":
        raise ValueError(
            f"engine_backend={engine_backend!r} requires engine='tensor' "
            f"(the {engine!r} engine is NumPy-only)"
        )
    if engine == "reference":
        from repro.core.scheduler import ShareStreamsScheduler

        return ShareStreamsScheduler(
            config,
            streams,
            trace_timeline=trace_timeline,
            trace=trace,
            observer=observer,
        )
    if engine == "batch":
        return BatchScheduler(
            config,
            streams,
            trace_timeline=trace_timeline,
            trace=trace,
            observer=observer,
        )
    if engine == "tensor":
        # Imported lazily: tensor_engine builds on this module.
        from repro.core.tensor_engine import TensorScheduler

        return TensorScheduler(
            config,
            streams,
            trace_timeline=trace_timeline,
            trace=trace,
            observer=observer,
            engine_backend=engine_backend,
        )
    raise ValueError(
        f"unknown engine {engine!r} "
        f"(expected 'reference', 'batch' or 'tensor')"
    )


class BatchSlotView:
    """Read/inspect adapter for one slot, mirroring RegisterBaseBlock.

    Exposes the subset of the Register Base block surface the drivers
    use (``config``, ``head``, ``backlog``, ``pending``, ``counters``)
    backed by the engine's arrays, so :class:`BatchScheduler` is a
    drop-in for streaming-unit refills and residual-queue accounting.
    """

    __slots__ = ("_engine", "_sid")

    def __init__(self, engine: "BatchScheduler", sid: int) -> None:
        self._engine = engine
        self._sid = sid

    @property
    def config(self) -> StreamConfig:
        return self._engine._configs[self._sid]

    @property
    def head(self) -> PendingPacket | None:
        """The request currently latched in the registers, if any."""
        e, i = self._engine, self._sid
        if not e._has_head[i]:
            return None
        return PendingPacket(
            deadline=int(e._head_deadline[i]),
            arrival=int(e._head_arrival[i]),
            length=int(e._head_length[i]),
        )

    @property
    def backlog(self) -> int:
        """Requests waiting behind the latched head."""
        return len(self._engine._queues[self._sid])

    @property
    def pending(self) -> list[PendingPacket]:
        """Waiting requests as packets (inspection only)."""
        return [
            PendingPacket(deadline=d, arrival=a, length=ln)
            for d, a, ln in self._engine._queues[self._sid]
        ]

    @property
    def counters(self) -> SlotCounters:
        return self._engine._slot_counters(self._sid)


class BatchScheduler:
    """Vectorized cycle-level engine, drop-in for ShareStreamsScheduler.

    Parameters
    ----------
    config:
        Architecture configuration (slot count, routing, block mode,
        sorting schedule, wrap/ideal arithmetic...).
    streams:
        Stream service constraints to load; further streams can be
        loaded later with :meth:`load_stream`.
    trace_timeline:
        Record the control FSM timeline (adds per-cycle bookkeeping).
    trace:
        Optional legacy :class:`repro.observability.TraceLog` receiving
        "decide" / "miss" / "drop" events, as the reference engine
        emits them.
    observer:
        Telemetry hook receiving every cycle's outcome — same protocol
        as the reference engine, so traces/metrics are emitted
        identically by both.
    """

    def __init__(
        self,
        config: ArchConfig,
        streams: list[StreamConfig] | None = None,
        *,
        trace_timeline: bool = False,
        trace=None,
        observer=None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.observer = resolve_observer(trace, observer)
        self.trace_timeline = trace_timeline
        self.control = ControlUnit(trace=trace_timeline)
        n = config.n_slots
        self._n = n
        self._wrap = config.wrap
        self._deadline_only = config.deadline_only

        # -- per-slot state (idle bundles: valid=False, fields zero) --
        self._configs: list[StreamConfig | None] = [None] * n
        self._loaded = np.zeros(n, dtype=bool)
        self._has_head = np.zeros(n, dtype=bool)  # a latched request
        self._attr_deadline = np.zeros(n, dtype=np.int64)  # as driven
        self._attr_arrival = np.zeros(n, dtype=np.int64)
        self._x = np.zeros(n, dtype=np.int64)  # current numerator x'
        self._y = np.zeros(n, dtype=np.int64)  # current denominator y'
        self._cfg_x = np.zeros(n, dtype=np.int64)  # original window
        self._cfg_y = np.zeros(n, dtype=np.int64)
        self._head_deadline = np.zeros(n, dtype=np.int64)  # actual
        self._head_arrival = np.zeros(n, dtype=np.int64)
        self._head_length = np.zeros(n, dtype=np.int64)
        self._edf_bias = np.zeros(n, dtype=np.int64)
        self._period = np.ones(n, dtype=np.int64)
        self._mode = np.full(n, _MODE_CODE[SchedulingMode.DWCS], np.int64)
        self._dwcs_like = np.zeros(n, dtype=bool)  # mode in {DWCS, FS}
        self._sid = np.arange(n, dtype=np.int64)

        # -- performance counters --
        self._wins = np.zeros(n, dtype=np.int64)
        self._serviced = np.zeros(n, dtype=np.int64)
        self._missed = np.zeros(n, dtype=np.int64)
        self._violations = np.zeros(n, dtype=np.int64)
        self._window_resets = np.zeros(n, dtype=np.int64)
        self._loads = np.zeros(n, dtype=np.int64)
        self._fast_forwarded = 0  # idle decision cycles skipped in bulk

        # -- pending-request queues: (deadline, arrival, length) --
        self._queues: list[deque] = [deque() for _ in range(n)]

        # -- network geometry (memoized index permutations, shared) --
        self._shuffle = build_shuffle_permutation(n)
        self._log2n = n.bit_length() - 1
        self._bitonic_passes = build_bitonic_passes(n)

        if streams:
            for stream in streams:
                self.load_stream(stream)
        self.control.load(1, detail="power-on constraint load")

    # ------------------------------------------------------------------
    # slot management (LOAD path)
    # ------------------------------------------------------------------

    def load_stream(self, stream: StreamConfig) -> BatchSlotView:
        """Bind a stream's service constraints to its stream-slot."""
        if not 0 <= stream.sid < self._n:
            raise ValueError(
                f"sid {stream.sid} out of range for "
                f"{self._n}-slot scheduler"
            )
        if self._configs[stream.sid] is not None:
            raise ValueError(f"slot {stream.sid} already loaded")
        i = stream.sid
        self._configs[i] = stream
        self._loaded[i] = True
        self._attr_deadline[i] = stream.initial_deadline
        self._attr_arrival[i] = 0
        self._x[i] = self._cfg_x[i] = stream.loss_numerator
        self._y[i] = self._cfg_y[i] = stream.loss_denominator
        self._period[i] = stream.period
        self._mode[i] = _MODE_CODE[stream.mode]
        self._dwcs_like[i] = _MODE_CODE[stream.mode] in _DWCS_LIKE
        return BatchSlotView(self, i)

    def slot(self, sid: int) -> BatchSlotView:
        """View of the slot bound to stream ``sid``."""
        if not (0 <= sid < self._n) or self._configs[sid] is None:
            raise KeyError(f"no stream loaded in slot {sid}")
        return BatchSlotView(self, sid)

    @property
    def active_slots(self) -> list[BatchSlotView]:
        """All populated stream-slots, in slot order."""
        return [
            BatchSlotView(self, i)
            for i in range(self._n)
            if self._configs[i] is not None
        ]

    def enqueue(
        self, sid: int, deadline: int, arrival: int, length: int = 1500
    ) -> None:
        """Deposit one packet request into a slot's pending queue."""
        if self._configs[sid] is None:
            raise KeyError(f"no stream loaded in slot {sid}")
        self._queues[sid].append((deadline, arrival, length))
        if not self._has_head[sid]:
            self._latch_next(sid)

    # ------------------------------------------------------------------
    # Register Base block update mirror (scalar, one slot)
    # ------------------------------------------------------------------

    def _latch_next(self, i: int) -> None:
        q = self._queues[i]
        if not q:
            self._has_head[i] = False
            return
        deadline, arrival, length = q.popleft()
        self._head_deadline[i] = deadline
        self._head_arrival[i] = arrival
        self._head_length[i] = length
        attr_dl = deadline
        if self._mode[i] == _MODE_CODE[SchedulingMode.EDF]:
            attr_dl += int(self._edf_bias[i])
        if self._wrap:
            self._attr_deadline[i] = attr_dl & _DL_MASK
            self._attr_arrival[i] = arrival & _ARR_MASK
        else:
            self._attr_deadline[i] = attr_dl
            self._attr_arrival[i] = arrival
        self._has_head[i] = True
        self._loads[i] += 1

    def _head_is_late(self, i: int, now: int) -> bool:
        if not self._has_head[i]:
            return False
        d = int(self._head_deadline[i])
        if self._wrap:
            diff = (d - now) & _DL_MASK
            return diff >= _DL_HALF
        return d < now

    def _reset_window(self, i: int) -> None:
        self._x[i] = self._cfg_x[i]
        self._y[i] = self._cfg_y[i]
        self._window_resets[i] += 1

    def _apply_win_update(self, i: int) -> None:
        if self._y[i] > 0:
            self._y[i] -= 1
        if self._y[i] == 0 or self._y[i] <= self._x[i]:
            self._reset_window(i)

    def _apply_loss_update(self, i: int) -> None:
        if self._x[i] > 0:
            self._x[i] -= 1
            if self._y[i] > 0:
                self._y[i] -= 1
            if self._y[i] == 0 or self._x[i] == self._y[i]:
                self._reset_window(i)
        else:
            self._violations[i] += 1
            self._y[i] = min(int(self._y[i]) + 1, _Y_MAX)

    def _record_miss(self, i: int, now: int) -> bool:
        if not self._head_is_late(i, now):
            return False
        self._missed[i] += 1
        if self._mode[i] in _DWCS_LIKE:
            self._apply_loss_update(i)
        return True

    def _service(
        self, i: int, now: int, *, as_winner: bool | None = None
    ) -> tuple[int, int, int] | None:
        if not self._has_head[i]:
            return None
        self._serviced[i] += 1
        mode = int(self._mode[i])
        if mode in _DWCS_LIKE:
            if as_winner is None:
                if self._head_is_late(i, now):
                    self._apply_loss_update(i)
                else:
                    self._apply_win_update(i)
            elif as_winner:
                self._apply_win_update(i)
        elif mode == _MODE_CODE[SchedulingMode.EDF] and as_winner is not False:
            self._edf_bias[i] += self._period[i]
        packet = (
            int(self._head_deadline[i]),
            int(self._head_arrival[i]),
            int(self._head_length[i]),
        )
        self._latch_next(i)
        return packet

    # ------------------------------------------------------------------
    # SCHEDULE phase: rank + network emulation (vectorized)
    # ------------------------------------------------------------------

    def _rank(
        self,
        now: int,
        valid: np.ndarray,
        attr_dl: np.ndarray,
        attr_arr: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
    ) -> np.ndarray:
        """Slot index array sorted highest-priority-first.

        The sort keys replicate the Table 2 comparator cascade; the
        stream-ID tie-break makes the order total, so the result both
        names the certified winner (position 0) and drives the
        compare-exchange emulation.  Wrapped serials are rebased around
        ``now`` — exact under the serial-arithmetic contract.
        """
        if self._wrap:
            dl = (attr_dl - now) & _DL_MASK
            dl = dl - (_DL_MOD * (dl >= _DL_HALF))
            arr = (attr_arr - now) & _ARR_MASK
            arr = arr - (_ARR_MOD * (arr >= _ARR_HALF))
        else:
            dl = attr_dl
            arr = attr_arr
        invalid = ~valid
        if self._deadline_only:
            return np.lexsort((self._sid, arr, dl, invalid))
        zero_wc = (x == 0) | (y == 0)
        # x / max(y, 1) is exact in float64 for 8-bit ratios and never
        # divides by zero; zero-constraint slots are forced to 0.0.
        wc = np.where(zero_wc, 0.0, x / np.where(y == 0, 1, y))
        den_key = np.where(zero_wc, -y, 0)
        num_key = np.where(zero_wc, 0, x)
        return np.lexsort((self._sid, arr, num_key, den_key, wc, dl, invalid))

    def _emit_positions(self, order: np.ndarray) -> np.ndarray:
        """Slot IDs in emitted network-position order (BA block).

        Replays the compare-exchange network on the total-order ranks:
        any Decision-block outcome equals a rank comparison, so the
        emitted permutation — including the paper schedule's partial
        order below the certified winner — matches the object model
        exactly.
        """
        n = self._n
        rank = np.empty(n, dtype=np.int64)
        rank[order] = self._sid
        state = np.arange(n, dtype=np.int64)
        if self.config.schedule == "bitonic":
            for idx, partner, asc in self._bitonic_passes:
                wi = state[idx]
                wp = state[partner]
                ri = rank[wi]
                rp = rank[wp]
                swap = np.where(asc, ri > rp, ri < rp)
                state[idx] = np.where(swap, wp, wi)
                state[partner] = np.where(swap, wi, wp)
        else:
            for _ in range(self._log2n):
                state = state[self._shuffle]
                r = rank[state]
                a = state[0::2]
                b = state[1::2]
                swap = r[0::2] > r[1::2]
                lo = np.where(swap, b, a)
                hi = np.where(swap, a, b)
                state[0::2] = lo
                state[1::2] = hi
        return state

    #: Kept as a staticmethod alias for back-compat; the memoized
    #: module-level function is the real implementation.
    _build_bitonic_passes = staticmethod(build_bitonic_passes)

    @property
    def _schedule_passes(self) -> int:
        if self.config.schedule == "bitonic" and not self.config.winner_only:
            return len(self._bitonic_passes)
        return self._log2n

    # ------------------------------------------------------------------
    # vectorized miss registration (loser window adjustments)
    # ------------------------------------------------------------------

    def _register_misses(self, late: np.ndarray) -> None:
        """Vectorized twin of ``record_miss`` over all late heads."""
        self._missed[late] += 1
        dwcs = late & self._dwcs_like
        if not dwcs.any():
            return
        x, y = self._x, self._y
        has_loss = dwcs & (x > 0)
        # consume one loss: x' -= 1, y' -= 1 (floored at zero)
        x[has_loss] -= 1
        dec_y = has_loss & (y > 0)
        y[dec_y] -= 1
        reset = has_loss & ((y == 0) | (x == y))
        x[reset] = self._cfg_x[reset]
        y[reset] = self._cfg_y[reset]
        self._window_resets[reset] += 1
        # violation: constraint already broken, denominator increments
        violated = dwcs & ~has_loss
        self._violations[violated] += 1
        y[violated] = np.minimum(y[violated] + 1, _Y_MAX)

    # ------------------------------------------------------------------
    # decision cycle (SCHEDULE + PRIORITY_UPDATE)
    # ------------------------------------------------------------------

    def decision_cycle(
        self,
        now: int,
        *,
        consume: str = "winner",
        count_misses: bool = True,
        drop_late: bool = False,
    ) -> DecisionOutcome:
        """Run one full decision cycle at scheduler time ``now``.

        Same contract as
        :meth:`repro.core.scheduler.ShareStreamsScheduler.decision_cycle`;
        the differential harness asserts cycle-by-cycle identical
        outcomes.
        """
        if consume not in ("winner", "block", "none"):
            raise ValueError(f"unknown consume policy {consume!r}")

        dropped: list[tuple[int, PendingPacket]] = []
        if drop_late:
            for i in np.nonzero(self._loaded)[0]:
                i = int(i)
                while True:
                    if count_misses and self._head_is_late(i, now):
                        self._record_miss(i, now)
                    if not self._head_is_late(i, now):
                        break
                    d, a, ln = (
                        int(self._head_deadline[i]),
                        int(self._head_arrival[i]),
                        int(self._head_length[i]),
                    )
                    self._latch_next(i)
                    dropped.append(
                        (i, PendingPacket(deadline=d, arrival=a, length=ln))
                    )

        # SCHEDULE: rank, then replay the network permutation.
        valid = self._has_head & self._loaded
        rank_order = self._rank(
            now, valid, self._attr_deadline, self._attr_arrival,
            self._x, self._y,
        )
        if self.config.winner_only:
            w = int(rank_order[0])
            order = [w] if valid[w] else []
        else:
            emitted = self._emit_positions(rank_order)
            order = emitted[valid[emitted]].tolist()
        passes = self._schedule_passes
        self.control.schedule(passes, detail=f"t={now}")

        # Miss registration (performance counters, Table 3).
        misses: list[int] = []
        if count_misses:
            if self._wrap:
                diff = (self._head_deadline - now) & _DL_MASK
                late = valid & (diff >= _DL_HALF)
            else:
                late = valid & (self._head_deadline < now)
            if late.any():
                misses = np.nonzero(late)[0].tolist()
                self._register_misses(late)

        # PRIORITY_UPDATE: circulate one ID, consume, adjust attributes.
        circulated: int | None = None
        serviced: list[tuple[int, PendingPacket]] = []
        if order:
            update_sid = order[0]
            if self.config.block_mode is BlockMode.MAX_FIRST:
                circulated = order[0]
            else:
                circulated = order[-1]
            if consume == "winner":
                if count_misses and self._head_is_late(circulated, now):
                    packet = self._service(circulated, now, as_winner=False)
                else:
                    packet = self._service(circulated, now)
                if packet is not None:
                    serviced.append(
                        (circulated, PendingPacket(*packet))
                    )
            elif consume == "block":
                if self.config.routing is Routing.WR:
                    raise ValueError(
                        "block consumption requires BA routing "
                        "(WR emits only the winner)"
                    )
                consume_order = (
                    order
                    if self.config.block_mode is BlockMode.MAX_FIRST
                    else list(reversed(order))
                )
                for sid in consume_order:
                    packet = self._service(
                        sid, now, as_winner=(sid == update_sid)
                    )
                    if packet is not None:
                        serviced.append((sid, PendingPacket(*packet)))
            self._wins[circulated] += 1
        self.control.priority_update(
            self.config.update_cycles, detail=f"circulate={circulated}"
        )

        outcome = DecisionOutcome(
            now=now,
            block=tuple(order),
            circulated_sid=circulated,
            serviced=tuple(serviced),
            misses=tuple(misses),
            hw_cycles=passes + self.config.update_cycles,
            dropped=tuple(dropped),
        )
        if self.observer is not None:
            self.observer.on_decision(outcome)
        return outcome

    # ------------------------------------------------------------------
    # self-advancing periodic workloads (whole runs, no Python queues)
    # ------------------------------------------------------------------

    def run_periodic(
        self,
        n_cycles: int,
        *,
        offsets: np.ndarray | None = None,
        step: np.ndarray | int | None = None,
        stride: np.ndarray | int | None = None,
        consume: str = "winner",
        count_misses: bool = True,
        collect_winners: bool = False,
        fast_forward: bool = True,
    ) -> PeriodicRunResult:
        """Run ``n_cycles`` decision cycles of a periodic request feed.

        Each loaded slot ``i`` emits one request per release interval
        (request ``k`` becomes available at cycle ``k * stride[i]``;
        the default stride of 1 is the dense one-request-per-cycle
        feed) with deadline ``offsets[i] + k * step[i]`` and
        arrival-time key ``k`` — the Table 3 workload family,
        generalized over slot count, offsets, steps, release strides,
        routing, block mode and discipline.  Heads never touch the
        Python pending queues: availability is
        ``consumed * stride <= t`` and consumption is counter
        arithmetic, so a whole decision cycle is a handful of array
        operations.

        Decision cycles where *no* slot has a pending head are
        fast-forwarded: ``now`` jumps straight to the next release
        boundary and the skipped SCHEDULE/PRIORITY_UPDATE pairs are
        accounted in bulk
        (:meth:`~repro.core.control.ControlUnit.advance_decision_cycles`),
        so sparse feeds (``stride > 1``) never burn Python cycles on
        empty decisions.  ``fast_forward=False`` keeps the cycle-by-
        cycle idle path; both produce identical results by construction
        (asserted by the hypothesis suite).

        Produces exactly the counters the equivalent per-cycle
        ``enqueue`` + :meth:`decision_cycle` loop would (the EDF winner
        bias commutes with latch time because the bias only changes
        when the slot is serviced, which also latches the next head).
        Requires ideal arithmetic (``wrap=False``) — these runs exceed
        the 16-bit horizon by construction.
        """
        if self._wrap:
            raise ValueError(
                "run_periodic requires ideal arithmetic (wrap=False)"
            )
        if consume not in ("winner", "block"):
            raise ValueError(f"unknown consume policy {consume!r}")
        if consume == "block" and self.config.routing is Routing.WR:
            raise ValueError(
                "block consumption requires BA routing "
                "(WR emits only the winner)"
            )
        n = self._n
        loaded = self._loaded
        if offsets is None:
            offs = np.where(
                loaded,
                np.asarray(
                    [
                        c.initial_deadline if c is not None else 0
                        for c in self._configs
                    ],
                    dtype=np.int64,
                ),
                0,
            )
        else:
            offs = np.asarray(offsets, dtype=np.int64)
            if offs.shape != (n,):
                raise ValueError("offsets shape mismatch")
        if step is None:
            steps = self._period.copy()
        else:
            steps = np.broadcast_to(
                np.asarray(step, dtype=np.int64), (n,)
            ).copy()
        if stride is None:
            strides = np.ones(n, dtype=np.int64)
        else:
            strides = np.broadcast_to(
                np.asarray(stride, dtype=np.int64), (n,)
            ).copy()
            if (strides < 1).any():
                raise ValueError("stride must be >= 1")

        consumed = np.zeros(n, dtype=np.int64)
        bias = self._edf_bias
        edf = self._mode == _MODE_CODE[SchedulingMode.EDF]
        max_first = self.config.block_mode is BlockMode.MAX_FIRST
        winner_only = self.config.winner_only
        winners = (
            np.full(n_cycles, -1, dtype=np.int64) if collect_winners else None
        )
        update_cycles = self.config.update_cycles
        t = 0
        while t < n_cycles:
            avail = consumed * strides
            valid = loaded & (avail <= t)
            if not valid.any():
                # Idle decision cycle: no slot has a pending head, so
                # nothing can be serviced or miss.  Jump to the next
                # release boundary (bulk control accounting) unless the
                # caller asked for the cycle-by-cycle path.
                if fast_forward:
                    pending = avail[loaded]
                    nxt = int(pending.min()) if pending.size else n_cycles
                    nxt = min(max(nxt, t + 1), n_cycles)
                    self.control.advance_decision_cycles(
                        nxt - t, self._schedule_passes, update_cycles,
                        detail="idle fast-forward",
                    )
                    self._fast_forwarded += nxt - t
                    t = nxt
                else:
                    self.control.schedule(
                        self._schedule_passes, detail=f"t={t}"
                    )
                    self.control.priority_update(
                        update_cycles, detail="circulate=None"
                    )
                    t += 1
                continue
            real_dl = offs + consumed * steps
            attr_dl = real_dl + np.where(edf, bias, 0)
            order = self._rank(t, valid, attr_dl, consumed, self._x, self._y)
            late = valid & (real_dl < t)
            if count_misses and late.any():
                self._register_misses(late)
            # Emitted block head / tail selection.
            w = int(order[0])
            if winner_only or max_first:
                circulated = w
            else:
                emitted = self._emit_positions(order)
                block = emitted[valid[emitted]]
                circulated = int(block[-1])
            update_sid = w
            if consume == "winner":
                i = circulated
                late_head = count_misses and bool(late[i])
                mode = int(self._mode[i])
                if mode in _DWCS_LIKE:
                    if late_head:
                        pass  # miss path already applied the loss update
                    elif bool(late[i]):
                        self._apply_loss_update(i)
                    else:
                        self._apply_win_update(i)
                elif edf[i] and not late_head:
                    bias[i] += steps[i]
                self._serviced[i] += 1
                consumed[i] += 1
            else:  # block: every valid head consumed this cycle
                i = update_sid
                mode = int(self._mode[i])
                if mode in _DWCS_LIKE:
                    self._apply_win_update(i)
                elif edf[i]:
                    bias[i] += steps[i]
                self._serviced[valid] += 1
                consumed[valid] += 1
            self._wins[circulated] += 1
            if winners is not None:
                winners[t] = circulated
            self.control.schedule(self._schedule_passes, detail=f"t={t}")
            self.control.priority_update(
                update_cycles, detail=f"circulate={circulated}"
            )
            t += 1
        result = PeriodicRunResult(
            n_streams=int(loaded.sum()),
            decision_cycles=n_cycles,
            wins=self._wins.copy(),
            misses=self._missed.copy(),
            serviced=self._serviced.copy(),
            frames_scheduled=int(self._serviced.sum()),
            winners=winners,
        )
        # The vectorized whole-run path intentionally emits no
        # per-cycle events (that would reintroduce the Python loop);
        # observers that understand run summaries get the final
        # per-stream counters instead.
        if self.observer is not None:
            summary_hook = getattr(self.observer, "on_run_summary", None)
            if summary_hook is not None:
                summary_hook(result)
        return result

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    @property
    def cycles_per_decision(self) -> int:
        """Hardware cycles one decision cycle consumes."""
        return self.config.sort_passes + self.config.update_cycles

    @property
    def fast_forwarded(self) -> int:
        """Idle decision cycles skipped in bulk by ``run_periodic``."""
        return self._fast_forwarded

    def _slot_counters(self, i: int) -> SlotCounters:
        return SlotCounters(
            wins=int(self._wins[i]),
            serviced=int(self._serviced[i]),
            missed_deadlines=int(self._missed[i]),
            violations=int(self._violations[i]),
            window_resets=int(self._window_resets[i]),
            loads=int(self._loads[i]),
        )

    def counters(self) -> dict[int, SlotCounters]:
        """Per-stream performance counters, keyed by stream ID."""
        return {
            i: self._slot_counters(i)
            for i in range(self._n)
            if self._configs[i] is not None
        }
