"""Array-API-neutral dispatch layer for the tensorized engines.

The ``(S, N)`` campaign engine (:mod:`repro.core.tensor_engine`) was
originally welded to NumPy.  This module is the thin ``xp``-style seam
that makes its batched kernels portable: an :class:`ArrayApiBackend`
wraps any `array API standard`_ namespace and exposes exactly the
primitives the engine needs — creation, ``where``/``minimum``, gathers
(``take`` / ``take_along_axis``), a **stable** ascending ``argsort``,
reductions and host transfers — with per-library subclasses smoothing
over the places real libraries deviate from the standard (``dim`` vs
``axis`` keywords in torch, CuPy's unstable device sort, NumPy < 2.0
lacking ``np.astype``).

Backends resolve *lazily* by name (:func:`resolve_backend`), so the
optional heavy dependencies stay optional: importing this module — or
running the default NumPy path — never imports torch/CuPy/
array-api-strict.  A missing library fails with a message naming the
``backends`` pip extra; :func:`available_backends` reports the same
availability map without raising (the benchmark/CI matrix uses it to
skip-with-reason).

Determinism contract: every backend must produce **byte-identical**
engine observables for the same workload.  The two requirements that
carry that guarantee are (a) all engine state is integer/bool typed —
there is no float anywhere in the kernels, so no accumulation-order
sensitivity — and (b) :meth:`ArrayApiBackend.argsort_stable` is a
*stable* ascending sort, which together with the engine's
sid-uniqueness makes every rank permutation total.  The hypothesis
suite (``tests/test_backend_equivalence.py``) and the CI backend matrix
enforce the contract.

.. _array API standard: https://data-apis.org/array-api/latest/
"""

from __future__ import annotations

import warnings
from typing import Any

import numpy as np

__all__ = [
    "ArrayApiBackend",
    "NumpyBackend",
    "NumbaBackend",
    "TorchBackend",
    "CupyBackend",
    "BACKENDS",
    "resolve_backend",
    "available_backends",
    "BackendUnavailable",
]

#: Installable backend names, resolution order of the benchmark sweep.
BACKENDS = ("numpy", "numba", "torch", "cupy", "array_api_strict")

#: pip extra that pins the optional backend libraries.
_EXTRA_HINT = 'pip install -e ".[backends]"'

#: pip extra that pins the numba JIT dependency.
_JIT_HINT = 'pip install -e ".[jit]"'


class BackendUnavailable(ImportError):
    """An engine backend's library is not importable on this host."""


class ArrayApiBackend:
    """Generic backend over any array API standard namespace.

    The base class uses only operations the 2023.12 standard
    guarantees (plus ``take_along_axis``, emulated below when the
    namespace predates its 2024.12 standardization), so it works
    unmodified for ``array-api-strict`` and any other conforming
    library.  Library-specific subclasses override individual methods
    for speed or API deviations — never semantics.

    Engine code additionally relies on the wrapped arrays supporting
    scalar ``arr[s, i]`` reads/writes and ``int(arr[s, i])``
    conversion (standard ``__getitem__``/``__setitem__``/``__int__``
    behavior) for the queue-backed scalar paths.
    """

    def __init__(self, namespace: Any, *, name: str = "array_api") -> None:
        self.xp = namespace
        self.name = name
        self.int64 = namespace.int64
        self.bool_ = getattr(namespace, "bool_", None) or namespace.bool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"

    # -- creation / transfer -------------------------------------------

    def asarray(self, obj, dtype=None):
        return self.xp.asarray(obj, dtype=dtype)

    def from_numpy(self, arr):
        """Adopt a host ndarray (dtype preserved)."""
        return self.xp.asarray(arr)

    def to_numpy(self, arr) -> np.ndarray:
        """Materialize on the host as an ndarray (zero-copy if possible)."""
        return np.asarray(arr)

    def zeros(self, shape, dtype):
        return self.xp.zeros(shape, dtype=dtype)

    def ones(self, shape, dtype):
        return self.xp.ones(shape, dtype=dtype)

    def full(self, shape, fill, dtype):
        return self.xp.full(shape, fill, dtype=dtype)

    def arange(self, n: int):
        return self.xp.arange(n, dtype=self.int64)

    def copy(self, arr):
        return self.xp.asarray(arr, copy=True)

    def astype(self, arr, dtype):
        return self.xp.astype(arr, dtype)

    def broadcast_to(self, arr, shape):
        return self.xp.broadcast_to(arr, shape)

    def reshape(self, arr, shape):
        return self.xp.reshape(arr, shape)

    # -- elementwise select --------------------------------------------

    def _wrap_scalar(self, value, like):
        if hasattr(value, "dtype"):
            return value
        return self.xp.asarray(value, dtype=like.dtype)

    def where(self, cond, a, b):
        """``where`` tolerating Python scalars for either branch."""
        if not hasattr(a, "dtype") and hasattr(b, "dtype"):
            a = self._wrap_scalar(a, b)
        elif not hasattr(b, "dtype") and hasattr(a, "dtype"):
            b = self._wrap_scalar(b, a)
        return self.xp.where(cond, a, b)

    def minimum(self, a, b):
        if not hasattr(b, "dtype"):
            b = self._wrap_scalar(b, a)
        return self.xp.minimum(a, b)

    # -- gathers -------------------------------------------------------

    def take(self, arr, indices, *, axis: int):
        """Gather 1-D ``indices`` along one axis."""
        return self.xp.take(arr, indices, axis=axis)

    def take_along_last(self, arr, indices):
        """``take_along_axis(arr, indices, axis=-1)`` for 2-D operands."""
        xp = self.xp
        if hasattr(xp, "take_along_axis"):
            return xp.take_along_axis(arr, indices, axis=-1)
        # Pre-2024.12 namespaces: emulate with a flat row-offset gather.
        s, n = arr.shape
        offsets = xp.reshape(xp.arange(s, dtype=indices.dtype) * n, (s, 1))
        flat = xp.reshape(xp.take(
            xp.reshape(arr, (-1,)),
            xp.reshape(indices + offsets, (-1,)),
            axis=0,
        ), indices.shape)
        return flat

    def interleave_pairs(self, lo, hi):
        """``(S, n/2) x 2 -> (S, n)``: lo0, hi0, lo1, hi1, ...

        The perfect-shuffle exchange writeback, expressed as
        stack+reshape so no strided ``__setitem__`` is required.
        """
        s, half = lo.shape
        return self.xp.reshape(
            self.xp.stack((lo, hi), axis=-1), (s, half * 2)
        )

    # -- sort ----------------------------------------------------------

    def argsort_stable(self, arr):
        """Stable ascending argsort along the last axis.

        Stability is load-bearing: the engine's composite rank sort
        cascades stable passes from least- to most-significant key
        (see :func:`repro.core.tensor_engine.table2_rank_order`), so an
        unstable sort would silently break the byte-identity contract.
        """
        return self.xp.argsort(arr, axis=-1, stable=True)

    # -- reductions / predicates ---------------------------------------

    def any(self, arr) -> bool:
        """Host boolean: does any element hold?"""
        return bool(self.xp.any(arr))

    def any_along_last(self, arr):
        return self.xp.any(arr, axis=-1)

    def argmax_last(self, arr):
        return self.xp.argmax(arr, axis=-1)

    def flip_last(self, arr):
        return self.xp.flip(arr, axis=-1)

    def min_int(self, arr) -> int:
        """Host integer minimum of a non-empty integer array."""
        return int(self.xp.min(arr))


class NumpyBackend(ArrayApiBackend):
    """The default backend: NumPy, compatible back to the 1.x series."""

    def __init__(self) -> None:
        super().__init__(np, name="numpy")
        self.bool_ = np.bool_

    def from_numpy(self, arr):
        return arr

    def to_numpy(self, arr) -> np.ndarray:
        return arr

    def copy(self, arr):
        return arr.copy()

    def astype(self, arr, dtype):
        # np.astype only exists in NumPy >= 2.0.
        return arr.astype(dtype)

    def where(self, cond, a, b):
        return np.where(cond, a, b)

    def minimum(self, a, b):
        return np.minimum(a, b)

    def take_along_last(self, arr, indices):
        return np.take_along_axis(arr, indices, axis=-1)

    def argsort_stable(self, arr):
        # kind="stable" predates the 2.0 `stable=` keyword.
        return np.argsort(arr, axis=-1, kind="stable")


class NumbaBackend(NumpyBackend):
    """NumPy state + fused compiled kernels (:mod:`repro.core.jit`).

    Subclasses :class:`NumpyBackend` — the ``(S, N)`` state stays plain
    host ndarrays with identical array-op semantics — and additionally
    carries :attr:`jit_kernels`, which the tensor engine checks to
    route its fused entry points (rank cascade, network replay, DWCS
    miss scatter, and the whole-run periodic driver) through the
    ``@njit(cache=True)`` kernels instead of per-phase array dispatch.

    When numba is missing the kernels would run interpreted (correct
    but slow), so construction raises :class:`BackendUnavailable`
    unless ``force_interpreted=True`` — the escape hatch the
    equivalence suite and the JIT benchmark use to exercise the kernel
    code paths on hosts without the ``jit`` extra (semantically the
    same run numba's ``NUMBA_DISABLE_JIT=1`` produces).  The
    :func:`resolve_backend` seam instead degrades ``"numba"`` to the
    NumPy backend with a single warning (see :func:`_make_numba`).
    """

    def __init__(self, *, force_interpreted: bool = False) -> None:
        from repro.core import jit

        if not (jit.NUMBA_AVAILABLE or force_interpreted):
            raise BackendUnavailable(
                f"engine backend 'numba' needs numba ({_JIT_HINT})"
            )
        super().__init__()
        self.name = "numba"
        #: The kernel module the engine's fused entry points dispatch to.
        self.jit_kernels = jit
        #: True when the kernels are actually compiled (numba present).
        self.jit_compiled = jit.NUMBA_AVAILABLE


class TorchBackend(ArrayApiBackend):  # pragma: no cover - needs torch
    """PyTorch backend (CPU by default; pass ``device="cuda"`` for GPU).

    torch spells reduction/sort axes ``dim`` and lacks ``astype`` /
    ``take(axis=)``, so every deviating method is overridden; semantics
    are identical to the base class.
    """

    def __init__(self, device: str = "cpu") -> None:
        import torch

        super().__init__(torch, name="torch")
        self.int64 = torch.int64
        self.bool_ = torch.bool
        self._device = torch.device(device)

    def asarray(self, obj, dtype=None):
        return self.xp.as_tensor(obj, dtype=dtype, device=self._device)

    def from_numpy(self, arr):
        return self.xp.as_tensor(arr, device=self._device)

    def to_numpy(self, arr) -> np.ndarray:
        return arr.detach().cpu().numpy()

    def zeros(self, shape, dtype):
        return self.xp.zeros(shape, dtype=dtype, device=self._device)

    def ones(self, shape, dtype):
        return self.xp.ones(shape, dtype=dtype, device=self._device)

    def full(self, shape, fill, dtype):
        return self.xp.full(shape, fill, dtype=dtype, device=self._device)

    def arange(self, n: int):
        return self.xp.arange(n, dtype=self.int64, device=self._device)

    def copy(self, arr):
        return arr.clone()

    def astype(self, arr, dtype):
        return arr.to(dtype)

    def reshape(self, arr, shape):
        return self.xp.reshape(arr, shape)

    def take(self, arr, indices, *, axis: int):
        return self.xp.index_select(arr, axis, indices)

    def take_along_last(self, arr, indices):
        return self.xp.take_along_dim(arr, indices, dim=-1)

    def interleave_pairs(self, lo, hi):
        s, half = lo.shape
        return self.xp.reshape(self.xp.stack((lo, hi), dim=-1), (s, half * 2))

    def argsort_stable(self, arr):
        return self.xp.argsort(arr, dim=-1, stable=True)

    def any_along_last(self, arr):
        return self.xp.any(arr, dim=-1)

    def argmax_last(self, arr):
        return self.xp.argmax(arr, dim=-1)

    def flip_last(self, arr):
        return self.xp.flip(arr, dims=(-1,))


class CupyBackend(ArrayApiBackend):  # pragma: no cover - needs CUDA
    """CuPy backend (CUDA GPU); NumPy-compatible API, device arrays."""

    def __init__(self) -> None:
        import cupy

        super().__init__(cupy, name="cupy")

    def to_numpy(self, arr) -> np.ndarray:
        return self.xp.asnumpy(arr)

    def copy(self, arr):
        return arr.copy()

    def astype(self, arr, dtype):
        return arr.astype(dtype)

    def take_along_last(self, arr, indices):
        return self.xp.take_along_axis(arr, indices, axis=-1)

    def argsort_stable(self, arr):
        # CuPy's device sort is not guaranteed stable; widen the key
        # with the position index so ties break by index.  Safe for
        # every engine key: values are bounded by the 8/16-bit
        # attribute fields plus cycle counts, far below 2**63 / n.
        n = arr.shape[-1]
        iota = self.xp.arange(n, dtype=arr.dtype)
        return self.xp.argsort(arr * n + iota, axis=-1)


def _make_numpy() -> ArrayApiBackend:
    return NumpyBackend()


#: One warning per process even if the backend cache is cleared.
_numba_fallback_warned = False


def _make_numba() -> ArrayApiBackend:
    """Compiled backend when numba is importable, else NumPy + warning.

    The degrade-don't-fail contract: ``engine_backend="numba"`` must
    never make a host without the ``jit`` extra crash or silently run
    the slow interpreted kernels — it falls back to the plain NumPy
    path (byte-identical observables, just uncompiled) and says so
    exactly once per process.
    """
    from repro.core import jit

    if jit.NUMBA_AVAILABLE:  # pragma: no cover - needs the jit extra
        return NumbaBackend()
    global _numba_fallback_warned
    if not _numba_fallback_warned:
        _numba_fallback_warned = True
        warnings.warn(
            "engine backend 'numba' requested but numba is not "
            "importable; degrading to the plain NumPy path "
            f"({_JIT_HINT})",
            RuntimeWarning,
            stacklevel=3,
        )
    return resolve_backend("numpy")


def _make_torch() -> ArrayApiBackend:
    try:
        return TorchBackend()
    except ImportError as exc:
        raise BackendUnavailable(
            f"engine backend 'torch' needs PyTorch ({_EXTRA_HINT}): {exc}"
        ) from exc


def _make_cupy() -> ArrayApiBackend:
    try:
        return CupyBackend()
    except ImportError as exc:
        raise BackendUnavailable(
            "engine backend 'cupy' needs CuPy with a CUDA runtime "
            f"(install cupy-cuda12x or similar): {exc}"
        ) from exc


def _make_array_api_strict() -> ArrayApiBackend:
    try:
        import array_api_strict
    except ImportError as exc:
        raise BackendUnavailable(
            "engine backend 'array_api_strict' needs array-api-strict "
            f"({_EXTRA_HINT}): {exc}"
        ) from exc
    return ArrayApiBackend(array_api_strict, name="array_api_strict")


_FACTORIES = {
    "numpy": _make_numpy,
    "numba": _make_numba,
    "torch": _make_torch,
    "cupy": _make_cupy,
    "array_api_strict": _make_array_api_strict,
}

_CACHE: dict[str, ArrayApiBackend] = {}


def resolve_backend(backend: str | ArrayApiBackend = "numpy") -> ArrayApiBackend:
    """Resolve a backend by name (lazily, cached) or pass one through.

    Accepts an already-constructed :class:`ArrayApiBackend` unchanged,
    so tests and power users can inject custom namespaces (e.g. the
    generic base class wrapped around NumPy itself).  Unknown names
    raise :class:`ValueError`; known names whose library is missing
    raise :class:`BackendUnavailable` with the install hint.
    """
    if isinstance(backend, ArrayApiBackend):
        return backend
    if backend not in _FACTORIES:
        raise ValueError(
            f"unknown engine backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)}"
        )
    cached = _CACHE.get(backend)
    if cached is None:
        cached = _CACHE[backend] = _FACTORIES[backend]()
    return cached


def available_backends() -> dict[str, str | None]:
    """``name -> None`` (usable) or a skip reason, without raising.

    The benchmark sweep and the CI matrix consult this to degrade to
    skip-with-reason on hosts missing an optional library or GPU.
    """
    report: dict[str, str | None] = {}
    for name in BACKENDS:
        try:
            resolved = resolve_backend(name)
        except BackendUnavailable as exc:
            report[name] = str(exc)
        except Exception as exc:  # pragma: no cover - env-specific
            report[name] = f"{type(exc).__name__}: {exc}"
        else:
            # A degrading resolve (numba without the jit extra) is not
            # "usable as itself" — report the fallback so sweeps and
            # the CI matrix skip-with-reason instead of re-measuring
            # the NumPy path under another label.
            report[name] = (
                None
                if resolved.name == name
                else f"'{name}' degrades to {resolved.name!r} on this "
                f"host (numba not installed; {_JIT_HINT})"
            )
    return report
