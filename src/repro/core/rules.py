"""Pairwise stream-ordering rules (Table 2) with concurrent evaluation.

Table 2 of the paper gives the scheduler decision rules a Decision block
implements for DWCS (Dynamic Window-Constrained Scheduling):

1. **Earliest-Deadline First** — earlier deadline wins.
2. Equal deadlines → order **lowest window-constraint** (``x'/y'``) first.
3. Equal deadlines and *zero* window-constraints → order **highest
   window-denominator** first.
4. Equal deadlines and *equal non-zero* window-constraints → order
   **lowest window-numerator** first.
5. All other cases: **first-come-first-serve** (earlier arrival first).

The hardware evaluates every rule *concurrently* in combinational logic
and priority-encodes the valid rule's output into a single-cycle
decision (Figure 5).  :func:`evaluate` mirrors that: it computes every
predicate, then selects the first applicable rule.  The full predicate
vector is exposed on the returned :class:`RuleEvaluation` so tests and
the Table 2 benchmark can check rule coverage exactly as the hardware's
concurrent evaluation would resolve it.

Window-constraint comparison uses cross-multiplication
(``x_a * y_b`` vs ``x_b * y_a``) rather than division — this is how the
hardware compares 8-bit ratios (the paper's future-work section mentions
moving these products onto Virtex-II hard multipliers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.attributes import HardwareAttributes
from repro.core.fields import (
    ARRIVAL_BITS,
    ARRIVAL_FIELD,
    DEADLINE_BITS,
    DEADLINE_FIELD,
    serial_cmp,
)

__all__ = [
    "Rule",
    "RuleEvaluation",
    "compare",
    "compare_with_rule",
    "evaluate",
    "ordering_key",
]


class Rule(enum.Enum):
    """Which Table 2 rule resolved a pairwise decision."""

    VALIDITY = "validity"  # one side holds no eligible packet
    EARLIEST_DEADLINE = "earliest_deadline"
    LOWEST_WINDOW_CONSTRAINT = "lowest_window_constraint"
    HIGHEST_DENOMINATOR_ZERO_WC = "highest_denominator_zero_wc"
    LOWEST_NUMERATOR_EQUAL_WC = "lowest_numerator_equal_wc"
    FCFS = "fcfs"
    STREAM_ID = "stream_id"  # deterministic final tie-break (lower sid)


@dataclass(frozen=True, slots=True)
class RuleEvaluation:
    """Outcome of one concurrent rule evaluation.

    Attributes
    ----------
    result:
        ``-1`` if the first operand precedes (wins), ``+1`` if the
        second does.  Never ``0`` — the stream-ID tie-break makes the
        pairwise order total.
    rule:
        The rule that produced the decision.
    predicates:
        Mapping of predicate name → bool, the full combinational
        predicate vector the hardware would compute in parallel.
    """

    result: int
    rule: Rule
    predicates: dict[str, bool]


def _window_cmp(a: HardwareAttributes, b: HardwareAttributes) -> int:
    """Three-way compare of current window-constraints.

    Returns negative when ``a`` has the lower constraint.  A zero
    numerator *or* denominator counts as constraint 0 (the degenerate
    ``y' = 0`` state only arises transiently because window resets
    restore ``y'``); non-zero ratios compare by cross-products, as the
    8-bit hardware multipliers would.
    """
    a_zero = a.loss_numerator == 0 or a.loss_denominator == 0
    b_zero = b.loss_numerator == 0 or b.loss_denominator == 0
    if a_zero or b_zero:
        return b_zero - a_zero  # the zero side is the lower constraint
    lhs = a.loss_numerator * b.loss_denominator
    rhs = b.loss_numerator * a.loss_denominator
    return (lhs > rhs) - (lhs < rhs)


def compare_with_rule(
    a: HardwareAttributes,
    b: HardwareAttributes,
    *,
    wrap: bool = True,
    deadline_only: bool = False,
) -> tuple[int, Rule]:
    """Allocation-free pairwise decision: ``(result, fired_rule)``.

    The hot path of the decision network — same priority encoding as
    :func:`evaluate` but without materializing the predicate vector.
    ``result`` is ``-1`` when ``a`` precedes, ``+1`` when ``b`` does.
    """
    if a.valid != b.valid:
        return (-1 if a.valid else 1), Rule.VALIDITY
    if wrap:
        dl = serial_cmp(a.deadline, b.deadline, DEADLINE_BITS)
    else:
        dl = (a.deadline > b.deadline) - (a.deadline < b.deadline)
    if dl:
        return dl, Rule.EARLIEST_DEADLINE
    if not deadline_only:
        a_zero = a.loss_numerator == 0 or a.loss_denominator == 0
        b_zero = b.loss_numerator == 0 or b.loss_denominator == 0
        if a_zero and b_zero:
            den = (a.loss_denominator > b.loss_denominator) - (
                a.loss_denominator < b.loss_denominator
            )
            if den:
                return -den, Rule.HIGHEST_DENOMINATOR_ZERO_WC
        elif a_zero != b_zero:
            # Exactly one zero constraint: zero (= lowest) orders first.
            return (-1 if a_zero else 1), Rule.LOWEST_WINDOW_CONSTRAINT
        else:
            lhs = a.loss_numerator * b.loss_denominator
            rhs = b.loss_numerator * a.loss_denominator
            if lhs != rhs:
                return (
                    (1 if lhs > rhs else -1),
                    Rule.LOWEST_WINDOW_CONSTRAINT,
                )
            num = (a.loss_numerator > b.loss_numerator) - (
                a.loss_numerator < b.loss_numerator
            )
            if num:
                return num, Rule.LOWEST_NUMERATOR_EQUAL_WC
    if wrap:
        arr = serial_cmp(a.arrival, b.arrival, ARRIVAL_BITS)
    else:
        arr = (a.arrival > b.arrival) - (a.arrival < b.arrival)
    if arr:
        return arr, Rule.FCFS
    return (-1 if a.sid <= b.sid else 1), Rule.STREAM_ID


def evaluate(
    a: HardwareAttributes,
    b: HardwareAttributes,
    *,
    wrap: bool = True,
    deadline_only: bool = False,
) -> RuleEvaluation:
    """Resolve the pairwise order of two attribute bundles.

    Parameters
    ----------
    a, b:
        The two stream-slot attribute bundles presented to a Decision
        block in one hardware cycle.
    wrap:
        When true (default), deadline and arrival comparisons use
        16-bit serial (wrap-aware) arithmetic, as the hardware does.
        When false, plain integer comparison is used (the *ideal* mode
        used for cross-validation against software references).
    deadline_only:
        Restrict ordering to the deadline field plus FCFS/ID
        tie-breaks.  This is the simple-comparator configuration used
        when mapping pure fair-queuing service tags (Section 4.3:
        "require simple comparators to compare weights").

    Returns
    -------
    RuleEvaluation
        Decision (−1: ``a`` first, +1: ``b`` first), the rule that
        fired, and the concurrent predicate vector.
    """

    def _cmp(x: int, y: int, bits: int) -> int:
        if wrap:
            return serial_cmp(x, y, bits)
        return (x > y) - (x < y)

    dl = _cmp(a.deadline, b.deadline, DEADLINE_FIELD.bits)
    wc = _window_cmp(a, b)
    a_zero_wc = a.loss_numerator == 0 or a.loss_denominator == 0
    b_zero_wc = b.loss_numerator == 0 or b.loss_denominator == 0
    den = (a.loss_denominator > b.loss_denominator) - (
        a.loss_denominator < b.loss_denominator
    )
    num = (a.loss_numerator > b.loss_numerator) - (
        a.loss_numerator < b.loss_numerator
    )
    arr = _cmp(a.arrival, b.arrival, ARRIVAL_FIELD.bits)
    sid = (a.sid > b.sid) - (a.sid < b.sid)

    predicates = {
        "a_valid": a.valid,
        "b_valid": b.valid,
        "deadline_lt": dl < 0,
        "deadline_eq": dl == 0,
        "wc_lt": wc < 0,
        "wc_eq": wc == 0,
        "both_zero_wc": a_zero_wc and b_zero_wc,
        "denominator_gt": den > 0,
        "numerator_lt": num < 0,
        "arrival_lt": arr < 0,
        "arrival_eq": arr == 0,
    }

    # Priority-encoded selection, exactly the mux cascade of Figure 5.
    if a.valid != b.valid:
        return RuleEvaluation(-1 if a.valid else 1, Rule.VALIDITY, predicates)
    if dl != 0:
        return RuleEvaluation(dl, Rule.EARLIEST_DEADLINE, predicates)
    if not deadline_only:
        if a_zero_wc and b_zero_wc:
            if den != 0:
                return RuleEvaluation(
                    -den, Rule.HIGHEST_DENOMINATOR_ZERO_WC, predicates
                )
        elif wc != 0:
            return RuleEvaluation(wc, Rule.LOWEST_WINDOW_CONSTRAINT, predicates)
        else:  # equal, non-zero window-constraints
            if num != 0:
                return RuleEvaluation(
                    num, Rule.LOWEST_NUMERATOR_EQUAL_WC, predicates
                )
    if arr != 0:
        return RuleEvaluation(arr, Rule.FCFS, predicates)
    # Total tie: deterministic hardware tie-break on the wired slot index.
    return RuleEvaluation(-1 if sid <= 0 else 1, Rule.STREAM_ID, predicates)


def compare(
    a: HardwareAttributes,
    b: HardwareAttributes,
    *,
    wrap: bool = True,
    deadline_only: bool = False,
) -> int:
    """Three-way pairwise order (−1: ``a`` first, +1: ``b`` first).

    Thin convenience wrapper over :func:`compare_with_rule` for callers
    that do not need the fired rule.
    """
    return compare_with_rule(a, b, wrap=wrap, deadline_only=deadline_only)[0]


def ordering_key(attrs: HardwareAttributes, now: int = 0):
    """Total-order key equivalent to the Table 2 rules (ideal arithmetic).

    Produces a tuple such that sorting bundles by it matches repeated
    pairwise :func:`compare` with ``wrap=False``.  ``now`` rebases
    wrapped deadlines so keys stay monotone across the 16-bit horizon.
    Used by the software reference disciplines and by property tests
    that check the pairwise rules against an independent formulation.
    """
    from repro.core.fields import serial_distance

    zero_wc = attrs.loss_numerator == 0 or attrs.loss_denominator == 0
    wc = attrs.window_constraint
    return (
        not attrs.valid,
        serial_distance(attrs.deadline, now & DEADLINE_FIELD.mask),
        wc,
        # Rule 3: among zero constraints, highest denominator first.
        -attrs.loss_denominator if zero_wc else 0,
        # Rule 4: among equal *non-zero* constraints, lowest numerator
        # first; zero-constraint pairs never consult the numerator.
        0 if zero_wc else attrs.loss_numerator,
        serial_distance(attrs.arrival, now & ARRIVAL_FIELD.mask),
        attrs.sid,
    )
