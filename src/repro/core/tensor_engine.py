"""Scenario-tensorized campaign engine (the NumPy fastest path).

:class:`CampaignEngine` generalizes the slot-vectorized
:class:`~repro.core.batch_engine.BatchScheduler` by one axis: given S
*same-shape* scenarios — identical architecture configuration (slot
count, routing, block mode, sorting schedule, wrap/extended arithmetic)
but independent stream constraint sets and workloads — it holds every
per-slot attribute as an ``(S, N)`` array and executes rank
computation, the compare-exchange network replay, miss registration and
the DWCS window updates as batched array ops across the *whole
campaign* at once.  Per-cycle Python overhead is amortized over S
scenarios instead of paid S times, which composes multiplicatively with
the process-level sharding in :mod:`repro.runner`.

The same-shape bucketing contract (see ``docs/ENGINES.md``) is what
makes the leading axis sound: every scenario in a bucket shares one
``ArchConfig``, so the sort-key cascade, the network pass geometry and
the wrap rebasing are common subexpressions; per-stream attributes
(periods, window constraints, disciplines, deadlines) vary freely along
``(S, N)``.  Mixed campaigns are bucketed by
:func:`repro.core.differential.bucket_key` before they reach this
module.

Idle-cycle fast-forward: when *no* scenario in the campaign has a
pending head, :meth:`CampaignEngine.run_periodic` jumps ``now``
directly to the next release boundary and accounts the skipped
SCHEDULE/PRIORITY_UPDATE pairs in bulk, so sparse workloads (the
isolation experiments are mostly idle) cost array ops only on the
cycles where a decision can actually differ from "nothing happened".

:class:`TensorScheduler` is the S=1 adapter: a drop-in for
:class:`~repro.core.scheduler.ShareStreamsScheduler` /
:class:`BatchScheduler` (``make_scheduler(..., engine="tensor")``)
backed by a one-row campaign, cross-validated cycle-by-cycle by
:mod:`repro.core.differential` like every other engine.

Every batched kernel dispatches through an
:class:`~repro.core.backend.ArrayApiBackend`
(``engine_backend="numpy"|"torch"|"cupy"|"array_api_strict"``), so the
``(S, N)`` state can live on whichever array library/device the caller
selects; all observables are byte-identical across backends (the
determinism contract in :mod:`repro.core.backend`).  The Table 2 rank
cascade runs as :func:`table2_rank_order` — a packed-integer-key stable
composite sort, permutation-identical to the historical
``numpy.lexsort`` formulation because the cascade's final ``sid`` key
makes the order total.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.backend import ArrayApiBackend, NumpyBackend, resolve_backend
from repro.core.batch_engine import (
    _ARR_HALF,
    _ARR_MASK,
    _ARR_MOD,
    _DL_HALF,
    _DL_MASK,
    _DL_MOD,
    _DWCS_LIKE,
    _MODE_CODE,
    _Y_MAX,
    PeriodicRunResult,
    build_bitonic_passes,
    build_shuffle_permutation,
)
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.control import ControlUnit
from repro.core.register_block import PendingPacket, SlotCounters
from repro.core.scheduler import DecisionOutcome
from repro.observability.hooks import resolve_observer

__all__ = [
    "CampaignEngine",
    "TensorScheduler",
    "TensorSlotView",
    "table2_rank_order",
]

_EDF = _MODE_CODE[SchedulingMode.EDF]

#: Fixed-point scale for the window-constraint ratio key.  ``x`` and
#: ``y`` are 8-bit fields, so two distinct ratios differ by at least
#: ``1/(255*255) = 1/65025``; scaling by ``2**16 = 65536`` stretches
#: every such gap past 1, making ``(x << 16) // y`` *order-exact*:
#: floored keys compare identically to the exact rationals (and equal
#: rationals floor to equal keys).  This replaces the float ``x / y``
#: lexsort key with an integer one that sorts identically on every
#: backend.
_WC_SHIFT = 16

#: int64 sentinel larger than any release boundary (idle fast-forward).
_FAR_FUTURE = 2**62


def table2_rank_order(
    bk: ArrayApiBackend,
    *,
    invalid,
    dl,
    arr,
    x=None,
    y=None,
    deadline_only: bool = False,
):
    """Backend-portable Table 2 rank cascade over the last axis.

    Produces the exact permutation of::

        np.lexsort((sid, arr, num_key, den_key, wc, dl, invalid))

    (or ``np.lexsort((sid, arr, dl, invalid))`` when ``deadline_only``)
    without ``lexsort``, which has no array API equivalent.  The
    cascade runs as stable argsort passes from least- to
    most-significant key; the three bounded window-constraint keys
    (ratio, denominator, numerator — 8-bit fields) pack into one
    integer word so the full cascade costs at most three passes on top
    of the implicit slot-order (``sid``) base case.  Because ``sid`` is
    unique per scenario the order is total, so any correct sort yields
    the *identical* permutation — byte-identity with the historical
    NumPy path holds by construction and is asserted by the hypothesis
    equivalence suite.

    All operands are ``(S, N)`` backend arrays: ``invalid`` bool (sorts
    loaded-and-pending slots first), ``dl``/``arr`` rebased int64
    deadline/arrival keys, ``x``/``y`` the live window-constraint
    counters (ignored when ``deadline_only``).
    """
    # Base case: the identity order along the slot axis IS the sid key,
    # and every later pass is stable, so ties keep ascending sid.
    order = bk.argsort_stable(arr)
    if not deadline_only:
        zero_wc = (x == 0) | (y == 0)
        wc_key = bk.where(
            zero_wc, 0, (x << _WC_SHIFT) // bk.where(y == 0, 1, y)
        )
        # den key is -y for zero-ratio slots, else 0; shift by +255 so
        # it packs as an unsigned 8-bit lane (order is translation-
        # invariant).  num key is x for live-ratio slots, else 0.
        den_key = bk.where(zero_wc, 255 - y, 255)
        num_key = bk.where(zero_wc, 0, x)
        packed = (wc_key << 16) | (den_key << 8) | num_key
        order = bk.take_along_last(
            order, bk.argsort_stable(bk.take_along_last(packed, order))
        )
    order = bk.take_along_last(
        order, bk.argsort_stable(bk.take_along_last(dl, order))
    )
    inv = bk.astype(invalid, bk.int64)
    return bk.take_along_last(
        order, bk.argsort_stable(bk.take_along_last(inv, order))
    )


def _per_scenario(value, n_scenarios: int, name: str) -> list:
    """Broadcast a scalar or validate a per-scenario sequence."""
    if isinstance(value, (list, tuple)):
        if len(value) != n_scenarios:
            raise ValueError(
                f"{name} must have one entry per scenario "
                f"({len(value)} != {n_scenarios})"
            )
        return list(value)
    return [value] * n_scenarios


class TensorSlotView:
    """Read/inspect adapter for one (scenario, slot) register block."""

    __slots__ = ("_engine", "_scenario", "_sid")

    def __init__(self, engine: "CampaignEngine", scenario: int, sid: int):
        self._engine = engine
        self._scenario = scenario
        self._sid = sid

    @property
    def config(self) -> StreamConfig:
        return self._engine._configs[self._scenario][self._sid]

    @property
    def head(self) -> PendingPacket | None:
        """The request currently latched in the registers, if any."""
        e, s, i = self._engine, self._scenario, self._sid
        if not e._has_head[s, i]:
            return None
        return PendingPacket(
            deadline=int(e._head_deadline[s, i]),
            arrival=int(e._head_arrival[s, i]),
            length=int(e._head_length[s, i]),
        )

    @property
    def backlog(self) -> int:
        """Requests waiting behind the latched head."""
        return len(self._engine._queues[self._scenario][self._sid])

    @property
    def pending(self) -> list[PendingPacket]:
        """Waiting requests as packets (inspection only)."""
        return [
            PendingPacket(deadline=d, arrival=a, length=ln)
            for d, a, ln in self._engine._queues[self._scenario][self._sid]
        ]

    @property
    def counters(self) -> SlotCounters:
        return self._engine._slot_counters(self._scenario, self._sid)


class CampaignEngine:
    """S-scenario tensorized scheduler: ``(S, N)`` state, lockstep cycles.

    Parameters
    ----------
    config:
        The *shared* architecture configuration — every scenario in the
        campaign runs the same slot count, routing, block mode, sorting
        schedule and arithmetic (the same-shape bucketing contract).
    stream_lists:
        One stream-constraint list per scenario (entries may be empty).
        Alternatively pass ``n_scenarios`` and load streams later with
        :meth:`load_stream`.
    observers:
        Optional per-scenario telemetry hooks (same ``on_decision``
        protocol as the other engines); ``None`` entries are skipped.
    trace_timeline:
        Record the (shared, lockstep) control FSM timeline.
    profile_phases:
        Accumulate per-phase wall time and call counts (SCHEDULE,
        PRIORITY_UPDATE, idle fast-forward) for span tracing — read back
        via :meth:`phase_report`.  Disabled (default) the per-cycle cost
        is a single ``is not None`` check per phase boundary, matching
        the observer-hook contract.
    engine_backend:
        Array library the ``(S, N)`` state and batched kernels run on —
        a :mod:`repro.core.backend` name (``"numpy"`` default,
        ``"torch"``, ``"cupy"``, ``"array_api_strict"``) or a
        pre-built :class:`~repro.core.backend.ArrayApiBackend`.
        Resolved lazily, so optional libraries stay optional; every
        backend produces byte-identical observables.
    """

    def __init__(
        self,
        config: ArchConfig,
        stream_lists=None,
        *,
        n_scenarios: int | None = None,
        observers=None,
        trace_timeline: bool = False,
        profile_phases: bool = False,
        engine_backend: str | ArrayApiBackend = "numpy",
    ) -> None:
        if stream_lists is None:
            if n_scenarios is None:
                raise ValueError(
                    "pass stream_lists or an explicit n_scenarios"
                )
            stream_lists = [None] * n_scenarios
        s_count = len(stream_lists)
        if n_scenarios is not None and n_scenarios != s_count:
            raise ValueError("n_scenarios disagrees with stream_lists")
        if s_count < 1:
            raise ValueError("campaign needs at least one scenario")
        self.config = config
        self.n_scenarios = s_count
        self.observers = list(observers) if observers is not None else None
        if self.observers is not None and len(self.observers) != s_count:
            raise ValueError("observers must have one entry per scenario")
        self.trace_timeline = trace_timeline
        #: Lockstep cycle accountant: every scenario consumes the same
        #: SCHEDULE/PRIORITY_UPDATE sequence, so one ControlUnit holds
        #: the per-scenario hardware-cycle tally for the whole campaign.
        self.control = ControlUnit(trace=trace_timeline)
        n = config.n_slots
        self._n = n
        self._wrap = config.wrap
        self._deadline_only = config.deadline_only
        bk = resolve_backend(engine_backend)
        self._b = bk
        self.engine_backend = bk.name

        shape = (s_count, n)
        i64, boo = bk.int64, bk.bool_
        # -- per-(scenario, slot) state, mirroring BatchScheduler --
        self._configs: list[list[StreamConfig | None]] = [
            [None] * n for _ in range(s_count)
        ]
        self._loaded = bk.zeros(shape, boo)
        self._has_head = bk.zeros(shape, boo)
        self._attr_deadline = bk.zeros(shape, i64)
        self._attr_arrival = bk.zeros(shape, i64)
        self._x = bk.zeros(shape, i64)
        self._y = bk.zeros(shape, i64)
        self._cfg_x = bk.zeros(shape, i64)
        self._cfg_y = bk.zeros(shape, i64)
        self._head_deadline = bk.zeros(shape, i64)
        self._head_arrival = bk.zeros(shape, i64)
        self._head_length = bk.zeros(shape, i64)
        self._edf_bias = bk.zeros(shape, i64)
        self._period = bk.ones(shape, i64)
        self._init_deadline = bk.zeros(shape, i64)
        self._mode = bk.full(shape, _MODE_CODE[SchedulingMode.DWCS], i64)
        self._dwcs_like = bk.zeros(shape, boo)
        self._iota = bk.arange(n)

        # -- performance counters --
        self._wins = bk.zeros(shape, i64)
        self._serviced = bk.zeros(shape, i64)
        self._missed = bk.zeros(shape, i64)
        self._violations = bk.zeros(shape, i64)
        self._window_resets = bk.zeros(shape, i64)
        self._loads = bk.zeros(shape, i64)
        self._fast_forwarded = 0  # idle decision cycles skipped in bulk
        #: phase -> [calls, wall seconds]; None = accounting disabled.
        self._phase_profile: dict[str, list] | None = (
            {
                "schedule": [0, 0.0],
                "priority_update": [0, 0.0],
                "fast_forward": [0, 0.0],
            }
            if profile_phases
            else None
        )

        # -- pending-request queues: (deadline, arrival, length) --
        self._queues: list[list[deque]] = [
            [deque() for _ in range(n)] for _ in range(s_count)
        ]

        # -- network geometry (memoized, shared across engines) --
        self._shuffle = bk.from_numpy(build_shuffle_permutation(n))
        self._log2n = n.bit_length() - 1
        self._bitonic_passes = build_bitonic_passes(n)
        # Per-position replay vectors: the pass geometry re-expressed as
        # full-width gathers (no strided/fancy writeback) so one
        # compare-exchange pass is pure take/where on any backend.
        # ``partner_full[j]`` is j's compare partner; ``gt_full[j]`` is
        # True where j takes the partner's value on ``rank[j] >
        # rank[partner]`` (ascending lane member), False where the
        # condition is ``<`` — i.e. ``asc == (j is the pair's low
        # index)``.
        pass_vectors = []
        for idx, partner, asc in self._bitonic_passes:
            partner_full = np.empty(n, dtype=np.int64)
            partner_full[idx] = partner
            partner_full[partner] = idx
            gt_full = np.empty(n, dtype=bool)
            gt_full[idx] = asc
            gt_full[partner] = ~asc
            pass_vectors.append(
                (bk.from_numpy(partner_full), bk.from_numpy(gt_full))
            )
        self._bitonic_pass_vectors = tuple(pass_vectors)

        # -- fused compiled kernels (engine_backend="numba") --
        # A backend carrying ``jit_kernels`` (the NumbaBackend) routes
        # the fused entry points — rank cascade, network replay, miss
        # scatter, whole-run periodic driver — through repro.core.jit.
        # The pass geometry is stacked into dense (P, N) arrays so one
        # kernel argument replays every pass without Python iteration.
        self._jit = getattr(bk, "jit_kernels", None)
        if self._jit is not None:
            p_count = len(self._bitonic_passes)
            partner_all = np.empty((p_count, n), dtype=np.int64)
            gt_all = np.empty((p_count, n), dtype=bool)
            for p, (partner_full, gt_full) in enumerate(
                self._bitonic_pass_vectors
            ):
                partner_all[p] = partner_full
                gt_all[p] = gt_full
            self._jit_partner = partner_all
            self._jit_gt = gt_all
            self._jit_shuffle = np.ascontiguousarray(
                np.asarray(self._shuffle, dtype=np.int64)
            )

        # -- per-cycle scratch, reused across decision cycles --
        # decision_cycle_all used to rebuild these outcome accumulators
        # and boolean masks every cycle; hot campaigns run millions of
        # cycles, so they are hoisted here and cleared/overwritten per
        # call instead (NumPy-family backends only for the array
        # scratch — array-API namespaces lack ufunc ``out=``).
        self._cycle_dropped: list[list] = [[] for _ in range(s_count)]
        self._cycle_misses: list[list[int]] = [[] for _ in range(s_count)]
        self._counting_cache: dict[tuple, object] = {}
        self._np_state = isinstance(bk, NumpyBackend)
        self._scratch_valid = (
            np.empty(shape, dtype=bool) if self._np_state else None
        )
        self._scratch_late = (
            np.empty(shape, dtype=bool) if self._np_state else None
        )

        for s, streams in enumerate(stream_lists):
            if streams:
                for stream in streams:
                    self.load_stream(s, stream)
        self.control.load(1, detail="power-on constraint load")

    # ------------------------------------------------------------------
    # slot management (LOAD path)
    # ------------------------------------------------------------------

    def load_stream(self, scenario: int, stream: StreamConfig) -> TensorSlotView:
        """Bind a stream's constraints to its slot in one scenario."""
        if not 0 <= scenario < self.n_scenarios:
            raise ValueError(f"scenario {scenario} out of range")
        if not 0 <= stream.sid < self._n:
            raise ValueError(
                f"sid {stream.sid} out of range for "
                f"{self._n}-slot scheduler"
            )
        if self._configs[scenario][stream.sid] is not None:
            raise ValueError(
                f"slot {stream.sid} already loaded in scenario {scenario}"
            )
        s, i = scenario, stream.sid
        self._configs[s][i] = stream
        self._loaded[s, i] = True
        self._attr_deadline[s, i] = stream.initial_deadline
        self._attr_arrival[s, i] = 0
        self._x[s, i] = self._cfg_x[s, i] = stream.loss_numerator
        self._y[s, i] = self._cfg_y[s, i] = stream.loss_denominator
        self._period[s, i] = stream.period
        self._init_deadline[s, i] = stream.initial_deadline
        self._mode[s, i] = _MODE_CODE[stream.mode]
        self._dwcs_like[s, i] = _MODE_CODE[stream.mode] in _DWCS_LIKE
        return TensorSlotView(self, s, i)

    def slot(self, scenario: int, sid: int) -> TensorSlotView:
        """View of the slot bound to stream ``sid`` in one scenario."""
        if (
            not (0 <= scenario < self.n_scenarios)
            or not (0 <= sid < self._n)
            or self._configs[scenario][sid] is None
        ):
            raise KeyError(
                f"no stream loaded in scenario {scenario} slot {sid}"
            )
        return TensorSlotView(self, scenario, sid)

    def enqueue(
        self,
        scenario: int,
        sid: int,
        deadline: int,
        arrival: int,
        length: int = 1500,
    ) -> None:
        """Deposit one packet request into a scenario's slot queue."""
        if self._configs[scenario][sid] is None:
            raise KeyError(
                f"no stream loaded in scenario {scenario} slot {sid}"
            )
        self._queues[scenario][sid].append((deadline, arrival, length))
        if not self._has_head[scenario, sid]:
            self._latch_next(scenario, sid)

    # ------------------------------------------------------------------
    # Register Base block update mirror (scalar, one scenario-slot)
    # ------------------------------------------------------------------

    def _latch_next(self, s: int, i: int) -> None:
        q = self._queues[s][i]
        if not q:
            self._has_head[s, i] = False
            return
        deadline, arrival, length = q.popleft()
        self._head_deadline[s, i] = deadline
        self._head_arrival[s, i] = arrival
        self._head_length[s, i] = length
        attr_dl = deadline
        if self._mode[s, i] == _EDF:
            attr_dl += int(self._edf_bias[s, i])
        if self._wrap:
            self._attr_deadline[s, i] = attr_dl & _DL_MASK
            self._attr_arrival[s, i] = arrival & _ARR_MASK
        else:
            self._attr_deadline[s, i] = attr_dl
            self._attr_arrival[s, i] = arrival
        self._has_head[s, i] = True
        self._loads[s, i] += 1

    def _head_is_late(self, s: int, i: int, now: int) -> bool:
        if not self._has_head[s, i]:
            return False
        d = int(self._head_deadline[s, i])
        if self._wrap:
            diff = (d - now) & _DL_MASK
            return diff >= _DL_HALF
        return d < now

    def _reset_window(self, s: int, i: int) -> None:
        self._x[s, i] = self._cfg_x[s, i]
        self._y[s, i] = self._cfg_y[s, i]
        self._window_resets[s, i] += 1

    def _apply_win_update(self, s: int, i: int) -> None:
        if self._y[s, i] > 0:
            self._y[s, i] -= 1
        if self._y[s, i] == 0 or self._y[s, i] <= self._x[s, i]:
            self._reset_window(s, i)

    def _apply_loss_update(self, s: int, i: int) -> None:
        if self._x[s, i] > 0:
            self._x[s, i] -= 1
            if self._y[s, i] > 0:
                self._y[s, i] -= 1
            if self._y[s, i] == 0 or self._x[s, i] == self._y[s, i]:
                self._reset_window(s, i)
        else:
            self._violations[s, i] += 1
            self._y[s, i] = min(int(self._y[s, i]) + 1, _Y_MAX)

    def _record_miss(self, s: int, i: int, now: int) -> bool:
        if not self._head_is_late(s, i, now):
            return False
        self._missed[s, i] += 1
        if self._mode[s, i] in _DWCS_LIKE:
            self._apply_loss_update(s, i)
        return True

    def _service(
        self, s: int, i: int, now: int, *, as_winner: bool | None = None
    ) -> tuple[int, int, int] | None:
        if not self._has_head[s, i]:
            return None
        self._serviced[s, i] += 1
        mode = int(self._mode[s, i])
        if mode in _DWCS_LIKE:
            if as_winner is None:
                if self._head_is_late(s, i, now):
                    self._apply_loss_update(s, i)
                else:
                    self._apply_win_update(s, i)
            elif as_winner:
                self._apply_win_update(s, i)
        elif mode == _EDF and as_winner is not False:
            self._edf_bias[s, i] += self._period[s, i]
        packet = (
            int(self._head_deadline[s, i]),
            int(self._head_arrival[s, i]),
            int(self._head_length[s, i]),
        )
        self._latch_next(s, i)
        return packet

    # ------------------------------------------------------------------
    # SCHEDULE phase: rank + network emulation, batched over scenarios
    # ------------------------------------------------------------------

    def _rank(self, now: int, valid, attr_dl, attr_arr, x, y):
        """``(S, N)`` slot orders, highest-priority-first per scenario.

        One :func:`table2_rank_order` composite stable sort over the
        Table 2 key cascade ranks *every scenario in the campaign* in a
        single call — the keys are ``(S, N)`` and the sort runs along
        the last axis, on whichever backend holds the state.
        """
        bk = self._b
        if self._jit is not None:
            order = np.empty(valid.shape, dtype=np.int64)
            self._jit.rank_into(
                order, valid, attr_dl, attr_arr, x, y,
                now, self._wrap, self._deadline_only,
            )
            return order
        if self._wrap:
            dl = (attr_dl - now) & _DL_MASK
            dl = bk.where(dl >= _DL_HALF, dl - _DL_MOD, dl)
            arr = (attr_arr - now) & _ARR_MASK
            arr = bk.where(arr >= _ARR_HALF, arr - _ARR_MOD, arr)
        else:
            dl = attr_dl
            arr = attr_arr
        return table2_rank_order(
            bk,
            invalid=~valid,
            dl=dl,
            arr=arr,
            x=x,
            y=y,
            deadline_only=self._deadline_only,
        )

    def _emit_positions(self, order):
        """``(S, N)`` slot IDs in emitted network-position order.

        Replays the compare-exchange network on the per-scenario rank
        arrays; each pass's per-position partner/direction geometry
        broadcasts across the scenario axis, so S networks advance per
        array op.  Expressed entirely as gathers + ``where`` (no
        scatter writeback), so the replay is backend-portable.
        """
        bk = self._b
        s_count, n = order.shape
        if self._jit is not None:
            state_out = np.empty((s_count, n), dtype=np.int64)
            self._jit.emit_into(
                state_out, np.ascontiguousarray(order),
                self._jit_partner, self._jit_gt, self._jit_shuffle,
                self._log2n, self.config.schedule == "bitonic",
            )
            return state_out
        # order is a permutation per row, so its argsort IS the inverse
        # permutation: rank[sid] = network position of that slot.
        rank = bk.argsort_stable(order)
        state = bk.broadcast_to(self._iota, (s_count, n))
        if self.config.schedule == "bitonic":
            for partner_full, gt_full in self._bitonic_pass_vectors:
                st_p = bk.take(state, partner_full, axis=1)
                r_s = bk.take_along_last(rank, state)
                r_p = bk.take_along_last(rank, st_p)
                take = bk.where(gt_full, r_s > r_p, r_s < r_p)
                state = bk.where(take, st_p, state)
        else:
            for _ in range(self._log2n):
                state = bk.take(state, self._shuffle, axis=1)
                r = bk.take_along_last(rank, state)
                a = state[:, 0::2]
                b = state[:, 1::2]
                swap = r[:, 0::2] > r[:, 1::2]
                lo = bk.where(swap, b, a)
                hi = bk.where(swap, a, b)
                state = bk.interleave_pairs(lo, hi)
        return state

    @property
    def _schedule_passes(self) -> int:
        if self.config.schedule == "bitonic" and not self.config.winner_only:
            return len(self._bitonic_passes)
        return self._log2n

    # ------------------------------------------------------------------
    # batched miss registration and window updates
    # ------------------------------------------------------------------

    def _register_misses(self, late) -> None:
        """Vectorized miss path over all late heads in all scenarios.

        Full-array masked rebinds (no boolean-scatter writes), so the
        kernel runs unchanged on every backend.
        """
        bk = self._b
        if self._jit is not None:
            self._jit.register_misses_into(
                np.ascontiguousarray(late), self._dwcs_like,
                self._x, self._y, self._cfg_x, self._cfg_y,
                self._missed, self._violations, self._window_resets,
            )
            return
        self._missed = bk.where(late, self._missed + 1, self._missed)
        dwcs = late & self._dwcs_like
        if not bk.any(dwcs):
            return
        x, y = self._x, self._y
        has_loss = dwcs & (x > 0)
        x = bk.where(has_loss, x - 1, x)
        y = bk.where(has_loss & (y > 0), y - 1, y)
        reset = has_loss & ((y == 0) | (x == y))
        violated = dwcs & ~has_loss
        y = bk.where(violated, bk.minimum(y + 1, _Y_MAX), y)
        self._x = bk.where(reset, self._cfg_x, x)
        self._y = bk.where(reset, self._cfg_y, y)
        self._window_resets = bk.where(
            reset, self._window_resets + 1, self._window_resets
        )
        self._violations = bk.where(
            violated, self._violations + 1, self._violations
        )

    def _win_update_mask(self, sel) -> None:
        """Batched win update at the ``(S, N)`` mask's set positions.

        Callers select at most one winner per scenario row (a one-hot
        row mask), mirroring the reference engine's per-slot update.
        """
        bk = self._b
        x, y = self._x, self._y
        y = bk.where(sel & (y > 0), y - 1, y)
        reset = sel & ((y == 0) | (y <= x))
        self._x = bk.where(reset, self._cfg_x, x)
        self._y = bk.where(reset, self._cfg_y, y)
        self._window_resets = bk.where(
            reset, self._window_resets + 1, self._window_resets
        )

    def _loss_update_mask(self, sel) -> None:
        """Batched loss update at the ``(S, N)`` mask's set positions."""
        bk = self._b
        x, y = self._x, self._y
        has_loss = sel & (x > 0)
        nx = bk.where(has_loss, x - 1, x)
        ny = bk.where(has_loss & (y > 0), y - 1, y)
        reset = has_loss & ((ny == 0) | (nx == ny))
        violated = sel & ~has_loss
        ny = bk.where(violated, bk.minimum(ny + 1, _Y_MAX), ny)
        self._x = bk.where(reset, self._cfg_x, nx)
        self._y = bk.where(reset, self._cfg_y, ny)
        self._window_resets = bk.where(
            reset, self._window_resets + 1, self._window_resets
        )
        self._violations = bk.where(
            violated, self._violations + 1, self._violations
        )

    # ------------------------------------------------------------------
    # decision cycle (SCHEDULE + PRIORITY_UPDATE), lockstep over S
    # ------------------------------------------------------------------

    def decision_cycle_all(
        self,
        now: int,
        *,
        consume="winner",
        count_misses=True,
        drop_late=False,
    ) -> list[DecisionOutcome]:
        """Run one decision cycle at ``now`` in *every* scenario.

        ``consume``, ``count_misses`` and ``drop_late`` accept either a
        single value for the whole campaign or one value per scenario
        (the differential buckets mix policies freely — only the
        architecture shape must agree).  Returns one
        :class:`~repro.core.scheduler.DecisionOutcome` per scenario,
        each identical to what the reference engine produces for that
        scenario in isolation.
        """
        profile = self._phase_profile
        if profile is not None:
            _t0 = time.perf_counter()
        s_count = self.n_scenarios
        consume_s = _per_scenario(consume, s_count, "consume")
        count_s = _per_scenario(count_misses, s_count, "count_misses")
        drop_s = _per_scenario(drop_late, s_count, "drop_late")
        for c in consume_s:
            if c not in ("winner", "block", "none"):
                raise ValueError(f"unknown consume policy {c!r}")

        # Reused per-cycle accumulators (hoisted to __init__): clearing
        # in place avoids rebuilding S lists on every decision cycle.
        dropped = self._cycle_dropped
        misses = self._cycle_misses
        for row in dropped:
            row.clear()
        for row in misses:
            row.clear()
        for s in range(s_count):
            if not drop_s[s]:
                continue
            for i, cfg in enumerate(self._configs[s]):
                if cfg is None:
                    continue
                while True:
                    if count_s[s] and self._head_is_late(s, i, now):
                        self._record_miss(s, i, now)
                    if not self._head_is_late(s, i, now):
                        break
                    d, a, ln = (
                        int(self._head_deadline[s, i]),
                        int(self._head_arrival[s, i]),
                        int(self._head_length[s, i]),
                    )
                    self._latch_next(s, i)
                    dropped[s].append(
                        (i, PendingPacket(deadline=d, arrival=a, length=ln))
                    )

        # SCHEDULE: one rank + one network replay for all scenarios.
        bk = self._b
        if self._scratch_valid is not None:
            valid = np.logical_and(
                self._has_head, self._loaded, out=self._scratch_valid
            )
        else:
            valid = self._has_head & self._loaded
        rank_order = self._rank(
            now, valid, self._attr_deadline, self._attr_arrival,
            self._x, self._y,
        )
        if self.config.winner_only:
            winners = bk.to_numpy(rank_order[:, 0])
            valid_np = bk.to_numpy(valid)
            orders = [
                [int(w)] if valid_np[s, w] else []
                for s, w in enumerate(winners)
            ]
        else:
            emitted = self._emit_positions(rank_order)
            emitted_np = np.asarray(bk.to_numpy(emitted))
            emitted_valid_np = np.asarray(
                bk.to_numpy(bk.take_along_last(valid, emitted))
            )
            orders = [
                emitted_np[s][emitted_valid_np[s]].tolist()
                for s in range(s_count)
            ]
        passes = self._schedule_passes
        self.control.schedule(passes, detail=f"t={now}")
        if profile is not None:
            _t1 = time.perf_counter()
            acc = profile["schedule"]
            acc[0] += 1
            acc[1] += _t1 - _t0

        # Miss registration, batched over the scenarios that count them.
        if self._scratch_late is not None:
            scratch = self._scratch_late
            if self._wrap:
                diff = (self._head_deadline - now) & _DL_MASK
                np.greater_equal(diff, _DL_HALF, out=scratch)
            else:
                np.less(self._head_deadline, now, out=scratch)
            late = np.logical_and(scratch, valid, out=scratch)
        elif self._wrap:
            diff = (self._head_deadline - now) & _DL_MASK
            late = valid & (diff >= _DL_HALF)
        else:
            late = valid & (self._head_deadline < now)
        # Per-scenario count_misses policies recur across cycles, so
        # the broadcast mask is memoized instead of rebuilt per cycle.
        count_key = tuple(count_s)
        counting = self._counting_cache.get(count_key)
        if counting is None:
            counting = self._counting_cache[count_key] = bk.asarray(
                list(count_key), dtype=bk.bool_
            )
        counted_late = late & counting[:, None]
        if bk.any(counted_late):
            counted_np = np.asarray(bk.to_numpy(counted_late))
            for s in np.nonzero(counted_np.any(axis=1))[0]:
                misses[int(s)].extend(np.nonzero(counted_np[s])[0].tolist())
            self._register_misses(counted_late)

        # PRIORITY_UPDATE: per-scenario circulate/consume (queue-backed,
        # so the service path stays scalar like the batch engine's).
        update_cycles = self.config.update_cycles
        max_first = self.config.block_mode is BlockMode.MAX_FIRST
        outcomes: list[DecisionOutcome] = []
        any_circulated: int | None = None
        for s in range(s_count):
            order = orders[s]
            circulated: int | None = None
            serviced: list[tuple[int, PendingPacket]] = []
            if order:
                update_sid = order[0]
                circulated = order[0] if max_first else order[-1]
                policy = consume_s[s]
                if policy == "winner":
                    if count_s[s] and self._head_is_late(s, circulated, now):
                        packet = self._service(
                            s, circulated, now, as_winner=False
                        )
                    else:
                        packet = self._service(s, circulated, now)
                    if packet is not None:
                        serviced.append((circulated, PendingPacket(*packet)))
                elif policy == "block":
                    if self.config.routing is Routing.WR:
                        raise ValueError(
                            "block consumption requires BA routing "
                            "(WR emits only the winner)"
                        )
                    consume_order = (
                        order if max_first else list(reversed(order))
                    )
                    for sid in consume_order:
                        packet = self._service(
                            s, sid, now, as_winner=(sid == update_sid)
                        )
                        if packet is not None:
                            serviced.append((sid, PendingPacket(*packet)))
                self._wins[s, circulated] += 1
                any_circulated = circulated
            outcomes.append(
                DecisionOutcome(
                    now=now,
                    block=tuple(order),
                    circulated_sid=circulated,
                    serviced=tuple(serviced),
                    misses=tuple(misses[s]),
                    hw_cycles=passes + update_cycles,
                    dropped=tuple(dropped[s]),
                )
            )
        self.control.priority_update(
            update_cycles, detail=f"circulate={any_circulated}"
        )
        if profile is not None:
            acc = profile["priority_update"]
            acc[0] += 1
            acc[1] += time.perf_counter() - _t1
        if self.observers is not None:
            for s, observer in enumerate(self.observers):
                if observer is not None:
                    observer.on_decision(outcomes[s])
        return outcomes

    def advance_idle(self, count: int) -> None:
        """Bulk-account ``count`` decision cycles where nothing is live.

        The campaign-level idle fast-forward: callers that *know* no
        scenario has a pending head (and no arrivals land) skip the
        rank/network/update array ops entirely and advance the lockstep
        control accounting in O(1).
        """
        if count <= 0:
            return
        profile = self._phase_profile
        if profile is not None:
            _t0 = time.perf_counter()
        self.control.advance_decision_cycles(
            count,
            self._schedule_passes,
            self.config.update_cycles,
            detail="idle fast-forward",
        )
        self._fast_forwarded += count
        if profile is not None:
            acc = profile["fast_forward"]
            acc[0] += 1
            acc[1] += time.perf_counter() - _t0

    @property
    def has_pending(self) -> bool:
        """True when any scenario has a latched head."""
        return bool((self._has_head & self._loaded).any())

    def idle_outcome(self, now: int) -> DecisionOutcome:
        """The outcome every scenario observes on an idle cycle."""
        return DecisionOutcome(
            now=now,
            block=(),
            circulated_sid=None,
            serviced=(),
            misses=(),
            hw_cycles=self._schedule_passes + self.config.update_cycles,
            dropped=(),
        )

    # ------------------------------------------------------------------
    # self-advancing periodic workloads, tensorized whole-campaign runs
    # ------------------------------------------------------------------

    def run_periodic(
        self,
        n_cycles: int,
        *,
        offsets: np.ndarray | None = None,
        step: np.ndarray | int | None = None,
        stride: np.ndarray | int | None = None,
        consume: str = "winner",
        count_misses: bool = True,
        collect_winners: bool = False,
        fast_forward: bool = True,
    ) -> list[PeriodicRunResult]:
        """Run a periodic feed through *every* scenario in lockstep.

        The tensorized twin of
        :meth:`~repro.core.batch_engine.BatchScheduler.run_periodic`:
        per decision cycle, ranking, the winner selection, miss
        registration and the DWCS window updates each run as one
        ``(S, N)`` array op, so the whole campaign advances per cycle
        at (amortized) the Python cost of a single scenario.  Scenarios
        whose slots are all idle at ``t`` simply sit out that cycle;
        when the *entire campaign* is idle, ``now`` fast-forwards to
        the next release boundary with bulk control accounting.

        ``offsets``/``step``/``stride`` broadcast over ``(S, N)``.
        Returns one :class:`PeriodicRunResult` per scenario, each
        identical to the per-scenario ``BatchScheduler`` run.
        """
        if self._wrap:
            raise ValueError(
                "run_periodic requires ideal arithmetic (wrap=False)"
            )
        if consume not in ("winner", "block"):
            raise ValueError(f"unknown consume policy {consume!r}")
        if consume == "block" and self.config.routing is Routing.WR:
            raise ValueError(
                "block consumption requires BA routing "
                "(WR emits only the winner)"
            )
        bk = self._b
        s_count, n = self.n_scenarios, self._n
        shape = (s_count, n)
        loaded = self._loaded
        if offsets is None:
            offs = bk.where(loaded, self._init_deadline, 0)
        else:
            offs = bk.from_numpy(
                np.ascontiguousarray(
                    np.broadcast_to(np.asarray(offsets, dtype=np.int64), shape)
                )
            )
        if step is None:
            steps = self._period
        else:
            steps = bk.from_numpy(
                np.ascontiguousarray(
                    np.broadcast_to(np.asarray(step, dtype=np.int64), shape)
                )
            )
        if stride is None:
            strides = None
        else:
            strides_np = np.broadcast_to(
                np.asarray(stride, dtype=np.int64), shape
            )
            if (strides_np < 1).any():
                raise ValueError("stride must be >= 1")
            strides = bk.from_numpy(np.ascontiguousarray(strides_np))

        if self._jit is not None and not self.trace_timeline:
            # Whole-run compiled driver: the K-cycle loop runs inside
            # one nopython kernel.  Timeline tracing needs per-cycle
            # control-FSM entries, so traced runs keep the array path.
            return self._run_periodic_compiled(
                n_cycles, offs, steps, strides,
                consume=consume, count_misses=count_misses,
                collect_winners=collect_winners, fast_forward=fast_forward,
            )

        consumed = bk.zeros(shape, bk.int64)
        edf = self._mode == _EDF
        max_first = self.config.block_mode is BlockMode.MAX_FIRST
        winner_only = self.config.winner_only
        winners = (
            np.full((s_count, n_cycles), -1, dtype=np.int64)
            if collect_winners
            else None
        )
        update_cycles = self.config.update_cycles
        iota = self._iota
        have_streams = bk.any(loaded)

        def gather_col(array2d, cols):
            """Per-scenario column gather: ``array2d[s, cols[s]]``."""
            return bk.take_along_last(array2d, cols[:, None])[:, 0]

        t = 0
        while t < n_cycles:
            avail = consumed if strides is None else consumed * strides
            valid = loaded & (avail <= t)
            active = bk.any_along_last(valid)
            if not bk.any(active):
                if fast_forward:
                    nxt = (
                        bk.min_int(bk.where(loaded, avail, _FAR_FUTURE))
                        if have_streams
                        else n_cycles
                    )
                    nxt = min(max(nxt, t + 1), n_cycles)
                    self.advance_idle(nxt - t)
                    t = nxt
                else:
                    self.control.schedule(
                        self._schedule_passes, detail=f"t={t}"
                    )
                    self.control.priority_update(
                        update_cycles, detail="circulate=None"
                    )
                    t += 1
                continue
            real_dl = offs + consumed * steps
            attr_dl = real_dl + bk.where(edf, self._edf_bias, 0)
            order = self._rank(t, valid, attr_dl, consumed, self._x, self._y)
            late = valid & (real_dl < t)
            if count_misses and bk.any(late):
                self._register_misses(late)
            # Emitted block head / tail selection, one per scenario.
            w = order[:, 0]
            if winner_only or max_first:
                circulated = w
            else:
                emitted = self._emit_positions(order)
                emitted_valid = bk.take_along_last(valid, emitted)
                # Last valid network position per scenario (block tail).
                last = (n - 1) - bk.argmax_last(bk.flip_last(emitted_valid))
                circulated = gather_col(emitted, last)
            # One-hot circulated-winner mask over active scenarios; all
            # per-cycle updates below are full-array masked rebinds, so
            # the loop body is pure backend ops (no scatter indexing).
            onehot = iota[None, :] == circulated[:, None]
            sel = active[:, None] & onehot
            if consume == "winner":
                late_c = gather_col(late, circulated) & active
                dw = gather_col(self._dwcs_like, circulated) & active
                edf_c = gather_col(edf, circulated) & active
                if count_misses:
                    # Late winners already took the miss-path loss
                    # update; only on-time winners get the win update.
                    win_mask = dw & ~late_c
                    loss_mask = None
                    edf_mask = edf_c & ~late_c
                else:
                    win_mask = dw & ~late_c
                    loss_mask = dw & late_c
                    edf_mask = edf_c
                if bk.any(win_mask):
                    self._win_update_mask(win_mask[:, None] & onehot)
                if loss_mask is not None and bk.any(loss_mask):
                    self._loss_update_mask(loss_mask[:, None] & onehot)
                if bk.any(edf_mask):
                    edf_sel = edf_mask[:, None] & onehot
                    self._edf_bias = bk.where(
                        edf_sel, self._edf_bias + steps, self._edf_bias
                    )
                self._serviced = bk.where(sel, self._serviced + 1, self._serviced)
                consumed = bk.where(sel, consumed + 1, consumed)
            else:  # block: every valid head consumed this cycle
                head_sel = active[:, None] & (iota[None, :] == w[:, None])
                dw_sel = head_sel & self._dwcs_like
                if bk.any(dw_sel):
                    self._win_update_mask(dw_sel)
                edf_sel = head_sel & edf
                if bk.any(edf_sel):
                    self._edf_bias = bk.where(
                        edf_sel, self._edf_bias + steps, self._edf_bias
                    )
                self._serviced = bk.where(
                    valid, self._serviced + 1, self._serviced
                )
                consumed = bk.where(valid, consumed + 1, consumed)
            self._wins = bk.where(sel, self._wins + 1, self._wins)
            if winners is not None:
                active_np = np.asarray(bk.to_numpy(active))
                winners[active_np, t] = np.asarray(bk.to_numpy(circulated))[
                    active_np
                ]
            self.control.schedule(self._schedule_passes, detail=f"t={t}")
            self.control.priority_update(
                update_cycles, detail="circulate=<campaign>"
            )
            t += 1
        return self._periodic_results(n_cycles, winners)

    def _periodic_results(
        self, n_cycles: int, winners: np.ndarray | None
    ) -> list[PeriodicRunResult]:
        """Snapshot the per-scenario counters into run results."""
        bk = self._b
        loaded_np = np.asarray(bk.to_numpy(self._loaded))
        wins_np = np.asarray(bk.to_numpy(self._wins))
        missed_np = np.asarray(bk.to_numpy(self._missed))
        serviced_np = np.asarray(bk.to_numpy(self._serviced))
        return [
            PeriodicRunResult(
                n_streams=int(loaded_np[s].sum()),
                decision_cycles=n_cycles,
                wins=wins_np[s].copy(),
                misses=missed_np[s].copy(),
                serviced=serviced_np[s].copy(),
                frames_scheduled=int(serviced_np[s].sum()),
                winners=winners[s].copy() if winners is not None else None,
            )
            for s in range(self.n_scenarios)
        ]

    def _run_periodic_compiled(
        self,
        n_cycles: int,
        offs,
        steps,
        strides,
        *,
        consume: str,
        count_misses: bool,
        collect_winners: bool,
        fast_forward: bool,
    ) -> list[PeriodicRunResult]:
        """Drive :func:`repro.core.jit.run_cycles` and replay accounting.

        State/counter arrays are the engine's own (the NumbaBackend
        keeps them as host ndarrays) and the kernel mutates them in
        place; the decision ring comes back with one circulated sid per
        (scenario, cycle) and is drained into ``winners``.  Control
        accounting is replayed in bulk from the kernel's cycle stats —
        with tracing off :class:`~repro.core.control.ControlUnit` is a
        pure counter, so the bulk replay is state-identical to the
        per-cycle calls the array path makes.
        """
        s_count = self.n_scenarios
        shape = (s_count, self._n)
        if strides is None:
            strides = np.ones(shape, dtype=np.int64)
        ring = np.full(
            (s_count, n_cycles if collect_winners else 0),
            -1, dtype=np.int64,
        )
        stats = np.zeros(3, dtype=np.int64)
        self._jit.run_cycles(
            int(n_cycles),
            self._loaded,
            np.ascontiguousarray(offs),
            np.ascontiguousarray(steps),
            np.ascontiguousarray(strides),
            self._dwcs_like,
            np.ascontiguousarray(self._mode == _EDF),
            self._x, self._y, self._cfg_x, self._cfg_y, self._edf_bias,
            self._wins, self._serviced, self._missed,
            self._violations, self._window_resets,
            self._deadline_only,
            self.config.winner_only,
            self.config.block_mode is BlockMode.MAX_FIRST,
            self.config.schedule == "bitonic",
            self._jit_partner, self._jit_gt, self._jit_shuffle,
            self._log2n,
            consume == "block",
            bool(count_misses),
            bool(fast_forward),
            bool(self._b.any(self._loaded)),
            ring,
            stats,
        )
        nonff, ff_cycles, ff_gaps = (int(v) for v in stats)
        passes = self._schedule_passes
        update_cycles = self.config.update_cycles
        profile = self._phase_profile
        if ff_cycles:
            if profile is not None:
                _t0 = time.perf_counter()
            self.control.advance_decision_cycles(
                ff_cycles, passes, update_cycles, detail="idle fast-forward"
            )
            self._fast_forwarded += ff_cycles
            if profile is not None:
                acc = profile["fast_forward"]
                acc[0] += ff_gaps
                acc[1] += time.perf_counter() - _t0
        if nonff:
            self.control.advance_decision_cycles(
                nonff, passes, update_cycles, detail="compiled run"
            )
        return self._periodic_results(
            n_cycles, ring if collect_winners else None
        )

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    @property
    def cycles_per_decision(self) -> int:
        """Hardware cycles one decision cycle consumes."""
        return self.config.sort_passes + self.config.update_cycles

    @property
    def fast_forwarded(self) -> int:
        """Idle decision cycles skipped in bulk (campaign-wide)."""
        return self._fast_forwarded

    def _slot_counters(self, s: int, i: int) -> SlotCounters:
        return SlotCounters(
            wins=int(self._wins[s, i]),
            serviced=int(self._serviced[s, i]),
            missed_deadlines=int(self._missed[s, i]),
            violations=int(self._violations[s, i]),
            window_resets=int(self._window_resets[s, i]),
            loads=int(self._loads[s, i]),
        )

    def counters(self, scenario: int) -> dict[int, SlotCounters]:
        """Per-stream performance counters for one scenario."""
        return {
            i: self._slot_counters(scenario, i)
            for i in range(self._n)
            if self._configs[scenario][i] is not None
        }

    def phase_report(self) -> dict[str, tuple[int, float]]:
        """Accumulated ``phase -> (calls, wall_seconds)`` in fixed order.

        Empty unless the engine was built with ``profile_phases=True``.
        Call counts are a pure function of the workload (they feed
        canonical span tags); wall time is an execution detail.
        """
        if self._phase_profile is None:
            return {}
        return {
            name: (int(calls), float(wall))
            for name, (calls, wall) in self._phase_profile.items()
        }


class TensorScheduler:
    """Single-scenario adapter over :class:`CampaignEngine`.

    Drop-in for the reference and batch engines
    (``make_scheduler(..., engine="tensor")``): the full scheduler
    surface — ``load_stream`` / ``enqueue`` / ``decision_cycle`` /
    ``slot`` / ``counters`` / ``run_periodic`` / ``control`` /
    ``observer`` — backed by a one-row campaign, so the tensor code
    paths are exercised (and differentially validated) even at S=1.
    """

    def __init__(
        self,
        config: ArchConfig,
        streams: list[StreamConfig] | None = None,
        *,
        trace_timeline: bool = False,
        trace=None,
        observer=None,
        engine_backend: str | ArrayApiBackend = "numpy",
    ) -> None:
        self.config = config
        self.trace = trace
        self.observer = resolve_observer(trace, observer)
        self.trace_timeline = trace_timeline
        self._engine = CampaignEngine(
            config,
            [list(streams) if streams else None],
            observers=[self.observer] if self.observer is not None else None,
            trace_timeline=trace_timeline,
            engine_backend=engine_backend,
        )
        self.control = self._engine.control
        self.engine_backend = self._engine.engine_backend

    @property
    def engine(self) -> CampaignEngine:
        """The backing one-row campaign engine."""
        return self._engine

    def load_stream(self, stream: StreamConfig) -> TensorSlotView:
        """Bind a stream's service constraints to its stream-slot."""
        return self._engine.load_stream(0, stream)

    def slot(self, sid: int) -> TensorSlotView:
        """View of the slot bound to stream ``sid``."""
        return self._engine.slot(0, sid)

    @property
    def active_slots(self) -> list[TensorSlotView]:
        """All populated stream-slots, in slot order."""
        return [
            TensorSlotView(self._engine, 0, i)
            for i in range(self._engine._n)
            if self._engine._configs[0][i] is not None
        ]

    def enqueue(
        self, sid: int, deadline: int, arrival: int, length: int = 1500
    ) -> None:
        """Deposit one packet request into a slot's pending queue."""
        self._engine.enqueue(0, sid, deadline, arrival, length)

    def decision_cycle(
        self,
        now: int,
        *,
        consume: str = "winner",
        count_misses: bool = True,
        drop_late: bool = False,
    ) -> DecisionOutcome:
        """Run one full decision cycle at scheduler time ``now``."""
        return self._engine.decision_cycle_all(
            now,
            consume=consume,
            count_misses=count_misses,
            drop_late=drop_late,
        )[0]

    def run_periodic(self, n_cycles: int, **kwargs) -> PeriodicRunResult:
        """Single-scenario slice of :meth:`CampaignEngine.run_periodic`."""
        result = self._engine.run_periodic(n_cycles, **kwargs)[0]
        if self.observer is not None:
            summary_hook = getattr(self.observer, "on_run_summary", None)
            if summary_hook is not None:
                summary_hook(result)
        return result

    @property
    def cycles_per_decision(self) -> int:
        """Hardware cycles one decision cycle consumes."""
        return self._engine.cycles_per_decision

    @property
    def fast_forwarded(self) -> int:
        """Idle decision cycles skipped in bulk by ``run_periodic``."""
        return self._engine.fast_forwarded

    def counters(self) -> dict[int, SlotCounters]:
        """Per-stream performance counters, keyed by stream ID."""
        return self._engine.counters(0)
