"""Scenario-tensorized campaign engine (the NumPy fastest path).

:class:`CampaignEngine` generalizes the slot-vectorized
:class:`~repro.core.batch_engine.BatchScheduler` by one axis: given S
*same-shape* scenarios — identical architecture configuration (slot
count, routing, block mode, sorting schedule, wrap/extended arithmetic)
but independent stream constraint sets and workloads — it holds every
per-slot attribute as an ``(S, N)`` array and executes rank
computation, the compare-exchange network replay, miss registration and
the DWCS window updates as batched array ops across the *whole
campaign* at once.  Per-cycle Python overhead is amortized over S
scenarios instead of paid S times, which composes multiplicatively with
the process-level sharding in :mod:`repro.runner`.

The same-shape bucketing contract (see ``docs/ENGINES.md``) is what
makes the leading axis sound: every scenario in a bucket shares one
``ArchConfig``, so the sort-key cascade, the network pass geometry and
the wrap rebasing are common subexpressions; per-stream attributes
(periods, window constraints, disciplines, deadlines) vary freely along
``(S, N)``.  Mixed campaigns are bucketed by
:func:`repro.core.differential.bucket_key` before they reach this
module.

Idle-cycle fast-forward: when *no* scenario in the campaign has a
pending head, :meth:`CampaignEngine.run_periodic` jumps ``now``
directly to the next release boundary and accounts the skipped
SCHEDULE/PRIORITY_UPDATE pairs in bulk, so sparse workloads (the
isolation experiments are mostly idle) cost array ops only on the
cycles where a decision can actually differ from "nothing happened".

:class:`TensorScheduler` is the S=1 adapter: a drop-in for
:class:`~repro.core.scheduler.ShareStreamsScheduler` /
:class:`BatchScheduler` (``make_scheduler(..., engine="tensor")``)
backed by a one-row campaign, cross-validated cycle-by-cycle by
:mod:`repro.core.differential` like every other engine.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.batch_engine import (
    _ARR_HALF,
    _ARR_MASK,
    _ARR_MOD,
    _DL_HALF,
    _DL_MASK,
    _DL_MOD,
    _DWCS_LIKE,
    _MODE_CODE,
    _Y_MAX,
    PeriodicRunResult,
    build_bitonic_passes,
    build_shuffle_permutation,
)
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.control import ControlUnit
from repro.core.register_block import PendingPacket, SlotCounters
from repro.core.scheduler import DecisionOutcome
from repro.observability.hooks import resolve_observer

__all__ = ["CampaignEngine", "TensorScheduler", "TensorSlotView"]

_EDF = _MODE_CODE[SchedulingMode.EDF]


def _per_scenario(value, n_scenarios: int, name: str) -> list:
    """Broadcast a scalar or validate a per-scenario sequence."""
    if isinstance(value, (list, tuple)):
        if len(value) != n_scenarios:
            raise ValueError(
                f"{name} must have one entry per scenario "
                f"({len(value)} != {n_scenarios})"
            )
        return list(value)
    return [value] * n_scenarios


class TensorSlotView:
    """Read/inspect adapter for one (scenario, slot) register block."""

    __slots__ = ("_engine", "_scenario", "_sid")

    def __init__(self, engine: "CampaignEngine", scenario: int, sid: int):
        self._engine = engine
        self._scenario = scenario
        self._sid = sid

    @property
    def config(self) -> StreamConfig:
        return self._engine._configs[self._scenario][self._sid]

    @property
    def head(self) -> PendingPacket | None:
        """The request currently latched in the registers, if any."""
        e, s, i = self._engine, self._scenario, self._sid
        if not e._has_head[s, i]:
            return None
        return PendingPacket(
            deadline=int(e._head_deadline[s, i]),
            arrival=int(e._head_arrival[s, i]),
            length=int(e._head_length[s, i]),
        )

    @property
    def backlog(self) -> int:
        """Requests waiting behind the latched head."""
        return len(self._engine._queues[self._scenario][self._sid])

    @property
    def pending(self) -> list[PendingPacket]:
        """Waiting requests as packets (inspection only)."""
        return [
            PendingPacket(deadline=d, arrival=a, length=ln)
            for d, a, ln in self._engine._queues[self._scenario][self._sid]
        ]

    @property
    def counters(self) -> SlotCounters:
        return self._engine._slot_counters(self._scenario, self._sid)


class CampaignEngine:
    """S-scenario tensorized scheduler: ``(S, N)`` state, lockstep cycles.

    Parameters
    ----------
    config:
        The *shared* architecture configuration — every scenario in the
        campaign runs the same slot count, routing, block mode, sorting
        schedule and arithmetic (the same-shape bucketing contract).
    stream_lists:
        One stream-constraint list per scenario (entries may be empty).
        Alternatively pass ``n_scenarios`` and load streams later with
        :meth:`load_stream`.
    observers:
        Optional per-scenario telemetry hooks (same ``on_decision``
        protocol as the other engines); ``None`` entries are skipped.
    trace_timeline:
        Record the (shared, lockstep) control FSM timeline.
    profile_phases:
        Accumulate per-phase wall time and call counts (SCHEDULE,
        PRIORITY_UPDATE, idle fast-forward) for span tracing — read back
        via :meth:`phase_report`.  Disabled (default) the per-cycle cost
        is a single ``is not None`` check per phase boundary, matching
        the observer-hook contract.
    """

    def __init__(
        self,
        config: ArchConfig,
        stream_lists=None,
        *,
        n_scenarios: int | None = None,
        observers=None,
        trace_timeline: bool = False,
        profile_phases: bool = False,
    ) -> None:
        if stream_lists is None:
            if n_scenarios is None:
                raise ValueError(
                    "pass stream_lists or an explicit n_scenarios"
                )
            stream_lists = [None] * n_scenarios
        s_count = len(stream_lists)
        if n_scenarios is not None and n_scenarios != s_count:
            raise ValueError("n_scenarios disagrees with stream_lists")
        if s_count < 1:
            raise ValueError("campaign needs at least one scenario")
        self.config = config
        self.n_scenarios = s_count
        self.observers = list(observers) if observers is not None else None
        if self.observers is not None and len(self.observers) != s_count:
            raise ValueError("observers must have one entry per scenario")
        self.trace_timeline = trace_timeline
        #: Lockstep cycle accountant: every scenario consumes the same
        #: SCHEDULE/PRIORITY_UPDATE sequence, so one ControlUnit holds
        #: the per-scenario hardware-cycle tally for the whole campaign.
        self.control = ControlUnit(trace=trace_timeline)
        n = config.n_slots
        self._n = n
        self._wrap = config.wrap
        self._deadline_only = config.deadline_only

        shape = (s_count, n)
        # -- per-(scenario, slot) state, mirroring BatchScheduler --
        self._configs: list[list[StreamConfig | None]] = [
            [None] * n for _ in range(s_count)
        ]
        self._loaded = np.zeros(shape, dtype=bool)
        self._has_head = np.zeros(shape, dtype=bool)
        self._attr_deadline = np.zeros(shape, dtype=np.int64)
        self._attr_arrival = np.zeros(shape, dtype=np.int64)
        self._x = np.zeros(shape, dtype=np.int64)
        self._y = np.zeros(shape, dtype=np.int64)
        self._cfg_x = np.zeros(shape, dtype=np.int64)
        self._cfg_y = np.zeros(shape, dtype=np.int64)
        self._head_deadline = np.zeros(shape, dtype=np.int64)
        self._head_arrival = np.zeros(shape, dtype=np.int64)
        self._head_length = np.zeros(shape, dtype=np.int64)
        self._edf_bias = np.zeros(shape, dtype=np.int64)
        self._period = np.ones(shape, dtype=np.int64)
        self._init_deadline = np.zeros(shape, dtype=np.int64)
        self._mode = np.full(shape, _MODE_CODE[SchedulingMode.DWCS], np.int64)
        self._dwcs_like = np.zeros(shape, dtype=bool)
        self._sid2d = np.broadcast_to(np.arange(n, dtype=np.int64), shape)

        # -- performance counters --
        self._wins = np.zeros(shape, dtype=np.int64)
        self._serviced = np.zeros(shape, dtype=np.int64)
        self._missed = np.zeros(shape, dtype=np.int64)
        self._violations = np.zeros(shape, dtype=np.int64)
        self._window_resets = np.zeros(shape, dtype=np.int64)
        self._loads = np.zeros(shape, dtype=np.int64)
        self._fast_forwarded = 0  # idle decision cycles skipped in bulk
        #: phase -> [calls, wall seconds]; None = accounting disabled.
        self._phase_profile: dict[str, list] | None = (
            {
                "schedule": [0, 0.0],
                "priority_update": [0, 0.0],
                "fast_forward": [0, 0.0],
            }
            if profile_phases
            else None
        )

        # -- pending-request queues: (deadline, arrival, length) --
        self._queues: list[list[deque]] = [
            [deque() for _ in range(n)] for _ in range(s_count)
        ]

        # -- network geometry (memoized, shared across engines) --
        self._shuffle = build_shuffle_permutation(n)
        self._log2n = n.bit_length() - 1
        self._bitonic_passes = build_bitonic_passes(n)

        for s, streams in enumerate(stream_lists):
            if streams:
                for stream in streams:
                    self.load_stream(s, stream)
        self.control.load(1, detail="power-on constraint load")

    # ------------------------------------------------------------------
    # slot management (LOAD path)
    # ------------------------------------------------------------------

    def load_stream(self, scenario: int, stream: StreamConfig) -> TensorSlotView:
        """Bind a stream's constraints to its slot in one scenario."""
        if not 0 <= scenario < self.n_scenarios:
            raise ValueError(f"scenario {scenario} out of range")
        if not 0 <= stream.sid < self._n:
            raise ValueError(
                f"sid {stream.sid} out of range for "
                f"{self._n}-slot scheduler"
            )
        if self._configs[scenario][stream.sid] is not None:
            raise ValueError(
                f"slot {stream.sid} already loaded in scenario {scenario}"
            )
        s, i = scenario, stream.sid
        self._configs[s][i] = stream
        self._loaded[s, i] = True
        self._attr_deadline[s, i] = stream.initial_deadline
        self._attr_arrival[s, i] = 0
        self._x[s, i] = self._cfg_x[s, i] = stream.loss_numerator
        self._y[s, i] = self._cfg_y[s, i] = stream.loss_denominator
        self._period[s, i] = stream.period
        self._init_deadline[s, i] = stream.initial_deadline
        self._mode[s, i] = _MODE_CODE[stream.mode]
        self._dwcs_like[s, i] = _MODE_CODE[stream.mode] in _DWCS_LIKE
        return TensorSlotView(self, s, i)

    def slot(self, scenario: int, sid: int) -> TensorSlotView:
        """View of the slot bound to stream ``sid`` in one scenario."""
        if (
            not (0 <= scenario < self.n_scenarios)
            or not (0 <= sid < self._n)
            or self._configs[scenario][sid] is None
        ):
            raise KeyError(
                f"no stream loaded in scenario {scenario} slot {sid}"
            )
        return TensorSlotView(self, scenario, sid)

    def enqueue(
        self,
        scenario: int,
        sid: int,
        deadline: int,
        arrival: int,
        length: int = 1500,
    ) -> None:
        """Deposit one packet request into a scenario's slot queue."""
        if self._configs[scenario][sid] is None:
            raise KeyError(
                f"no stream loaded in scenario {scenario} slot {sid}"
            )
        self._queues[scenario][sid].append((deadline, arrival, length))
        if not self._has_head[scenario, sid]:
            self._latch_next(scenario, sid)

    # ------------------------------------------------------------------
    # Register Base block update mirror (scalar, one scenario-slot)
    # ------------------------------------------------------------------

    def _latch_next(self, s: int, i: int) -> None:
        q = self._queues[s][i]
        if not q:
            self._has_head[s, i] = False
            return
        deadline, arrival, length = q.popleft()
        self._head_deadline[s, i] = deadline
        self._head_arrival[s, i] = arrival
        self._head_length[s, i] = length
        attr_dl = deadline
        if self._mode[s, i] == _EDF:
            attr_dl += int(self._edf_bias[s, i])
        if self._wrap:
            self._attr_deadline[s, i] = attr_dl & _DL_MASK
            self._attr_arrival[s, i] = arrival & _ARR_MASK
        else:
            self._attr_deadline[s, i] = attr_dl
            self._attr_arrival[s, i] = arrival
        self._has_head[s, i] = True
        self._loads[s, i] += 1

    def _head_is_late(self, s: int, i: int, now: int) -> bool:
        if not self._has_head[s, i]:
            return False
        d = int(self._head_deadline[s, i])
        if self._wrap:
            diff = (d - now) & _DL_MASK
            return diff >= _DL_HALF
        return d < now

    def _reset_window(self, s: int, i: int) -> None:
        self._x[s, i] = self._cfg_x[s, i]
        self._y[s, i] = self._cfg_y[s, i]
        self._window_resets[s, i] += 1

    def _apply_win_update(self, s: int, i: int) -> None:
        if self._y[s, i] > 0:
            self._y[s, i] -= 1
        if self._y[s, i] == 0 or self._y[s, i] <= self._x[s, i]:
            self._reset_window(s, i)

    def _apply_loss_update(self, s: int, i: int) -> None:
        if self._x[s, i] > 0:
            self._x[s, i] -= 1
            if self._y[s, i] > 0:
                self._y[s, i] -= 1
            if self._y[s, i] == 0 or self._x[s, i] == self._y[s, i]:
                self._reset_window(s, i)
        else:
            self._violations[s, i] += 1
            self._y[s, i] = min(int(self._y[s, i]) + 1, _Y_MAX)

    def _record_miss(self, s: int, i: int, now: int) -> bool:
        if not self._head_is_late(s, i, now):
            return False
        self._missed[s, i] += 1
        if self._mode[s, i] in _DWCS_LIKE:
            self._apply_loss_update(s, i)
        return True

    def _service(
        self, s: int, i: int, now: int, *, as_winner: bool | None = None
    ) -> tuple[int, int, int] | None:
        if not self._has_head[s, i]:
            return None
        self._serviced[s, i] += 1
        mode = int(self._mode[s, i])
        if mode in _DWCS_LIKE:
            if as_winner is None:
                if self._head_is_late(s, i, now):
                    self._apply_loss_update(s, i)
                else:
                    self._apply_win_update(s, i)
            elif as_winner:
                self._apply_win_update(s, i)
        elif mode == _EDF and as_winner is not False:
            self._edf_bias[s, i] += self._period[s, i]
        packet = (
            int(self._head_deadline[s, i]),
            int(self._head_arrival[s, i]),
            int(self._head_length[s, i]),
        )
        self._latch_next(s, i)
        return packet

    # ------------------------------------------------------------------
    # SCHEDULE phase: rank + network emulation, batched over scenarios
    # ------------------------------------------------------------------

    def _rank(
        self,
        now: int,
        valid: np.ndarray,
        attr_dl: np.ndarray,
        attr_arr: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
    ) -> np.ndarray:
        """``(S, N)`` slot orders, highest-priority-first per scenario.

        One :func:`numpy.lexsort` over the Table 2 key cascade ranks
        *every scenario in the campaign* in a single call — the keys
        are ``(S, N)`` and the sort runs along the last axis.
        """
        if self._wrap:
            dl = (attr_dl - now) & _DL_MASK
            dl = dl - (_DL_MOD * (dl >= _DL_HALF))
            arr = (attr_arr - now) & _ARR_MASK
            arr = arr - (_ARR_MOD * (arr >= _ARR_HALF))
        else:
            dl = attr_dl
            arr = attr_arr
        invalid = ~valid
        sid = self._sid2d
        if self._deadline_only:
            return np.lexsort((sid, arr, dl, invalid), axis=-1)
        zero_wc = (x == 0) | (y == 0)
        wc = np.where(zero_wc, 0.0, x / np.where(y == 0, 1, y))
        den_key = np.where(zero_wc, -y, 0)
        num_key = np.where(zero_wc, 0, x)
        return np.lexsort(
            (sid, arr, num_key, den_key, wc, dl, invalid), axis=-1
        )

    def _emit_positions(self, order: np.ndarray) -> np.ndarray:
        """``(S, N)`` slot IDs in emitted network-position order.

        Replays the compare-exchange network on the per-scenario rank
        arrays; each pass's index/partner geometry broadcasts across the
        scenario axis, so S networks advance per array op.
        """
        s_count, n = order.shape
        rank = np.empty_like(order)
        np.put_along_axis(rank, order, self._sid2d, axis=1)
        state = np.tile(np.arange(n, dtype=np.int64), (s_count, 1))
        if self.config.schedule == "bitonic":
            for idx, partner, asc in self._bitonic_passes:
                wi = state[:, idx]
                wp = state[:, partner]
                ri = np.take_along_axis(rank, wi, axis=1)
                rp = np.take_along_axis(rank, wp, axis=1)
                swap = np.where(asc, ri > rp, ri < rp)
                state[:, idx] = np.where(swap, wp, wi)
                state[:, partner] = np.where(swap, wi, wp)
        else:
            for _ in range(self._log2n):
                state = state[:, self._shuffle]
                r = np.take_along_axis(rank, state, axis=1)
                a = state[:, 0::2]
                b = state[:, 1::2]
                swap = r[:, 0::2] > r[:, 1::2]
                lo = np.where(swap, b, a)
                hi = np.where(swap, a, b)
                state[:, 0::2] = lo
                state[:, 1::2] = hi
        return state

    @property
    def _schedule_passes(self) -> int:
        if self.config.schedule == "bitonic" and not self.config.winner_only:
            return len(self._bitonic_passes)
        return self._log2n

    # ------------------------------------------------------------------
    # batched miss registration and window updates
    # ------------------------------------------------------------------

    def _register_misses(self, late: np.ndarray) -> None:
        """Vectorized miss path over all late heads in all scenarios."""
        self._missed[late] += 1
        dwcs = late & self._dwcs_like
        if not dwcs.any():
            return
        x, y = self._x, self._y
        has_loss = dwcs & (x > 0)
        x[has_loss] -= 1
        dec_y = has_loss & (y > 0)
        y[dec_y] -= 1
        reset = has_loss & ((y == 0) | (x == y))
        x[reset] = self._cfg_x[reset]
        y[reset] = self._cfg_y[reset]
        self._window_resets[reset] += 1
        violated = dwcs & ~has_loss
        self._violations[violated] += 1
        y[violated] = np.minimum(y[violated] + 1, _Y_MAX)

    def _win_update_at(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Batched win update at distinct ``(scenario, slot)`` pairs.

        Callers pass at most one winner per scenario row, so the
        scatter writes never collide.
        """
        x = self._x[rows, cols]
        y = self._y[rows, cols]
        y = np.where(y > 0, y - 1, y)
        reset = (y == 0) | (y <= x)
        self._y[rows, cols] = y
        rr, cc = rows[reset], cols[reset]
        self._x[rr, cc] = self._cfg_x[rr, cc]
        self._y[rr, cc] = self._cfg_y[rr, cc]
        self._window_resets[rr, cc] += 1

    def _loss_update_at(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Batched loss update at distinct ``(scenario, slot)`` pairs."""
        x = self._x[rows, cols]
        y = self._y[rows, cols]
        has_loss = x > 0
        nx = np.where(has_loss, x - 1, x)
        ny = np.where(has_loss & (y > 0), y - 1, y)
        reset = has_loss & ((ny == 0) | (nx == ny))
        violated = ~has_loss
        ny = np.where(violated, np.minimum(ny + 1, _Y_MAX), ny)
        self._x[rows, cols] = nx
        self._y[rows, cols] = ny
        rr, cc = rows[reset], cols[reset]
        self._x[rr, cc] = self._cfg_x[rr, cc]
        self._y[rr, cc] = self._cfg_y[rr, cc]
        self._window_resets[rr, cc] += 1
        self._violations[rows[violated], cols[violated]] += 1

    # ------------------------------------------------------------------
    # decision cycle (SCHEDULE + PRIORITY_UPDATE), lockstep over S
    # ------------------------------------------------------------------

    def decision_cycle_all(
        self,
        now: int,
        *,
        consume="winner",
        count_misses=True,
        drop_late=False,
    ) -> list[DecisionOutcome]:
        """Run one decision cycle at ``now`` in *every* scenario.

        ``consume``, ``count_misses`` and ``drop_late`` accept either a
        single value for the whole campaign or one value per scenario
        (the differential buckets mix policies freely — only the
        architecture shape must agree).  Returns one
        :class:`~repro.core.scheduler.DecisionOutcome` per scenario,
        each identical to what the reference engine produces for that
        scenario in isolation.
        """
        profile = self._phase_profile
        if profile is not None:
            _t0 = time.perf_counter()
        s_count = self.n_scenarios
        consume_s = _per_scenario(consume, s_count, "consume")
        count_s = _per_scenario(count_misses, s_count, "count_misses")
        drop_s = _per_scenario(drop_late, s_count, "drop_late")
        for c in consume_s:
            if c not in ("winner", "block", "none"):
                raise ValueError(f"unknown consume policy {c!r}")

        dropped: list[list[tuple[int, PendingPacket]]] = [
            [] for _ in range(s_count)
        ]
        for s in range(s_count):
            if not drop_s[s]:
                continue
            for i in np.nonzero(self._loaded[s])[0]:
                i = int(i)
                while True:
                    if count_s[s] and self._head_is_late(s, i, now):
                        self._record_miss(s, i, now)
                    if not self._head_is_late(s, i, now):
                        break
                    d, a, ln = (
                        int(self._head_deadline[s, i]),
                        int(self._head_arrival[s, i]),
                        int(self._head_length[s, i]),
                    )
                    self._latch_next(s, i)
                    dropped[s].append(
                        (i, PendingPacket(deadline=d, arrival=a, length=ln))
                    )

        # SCHEDULE: one rank + one network replay for all scenarios.
        valid = self._has_head & self._loaded
        rank_order = self._rank(
            now, valid, self._attr_deadline, self._attr_arrival,
            self._x, self._y,
        )
        if self.config.winner_only:
            winners = rank_order[:, 0]
            orders = [
                [int(w)] if valid[s, w] else []
                for s, w in enumerate(winners)
            ]
        else:
            emitted = self._emit_positions(rank_order)
            emitted_valid = np.take_along_axis(valid, emitted, axis=1)
            orders = [
                emitted[s][emitted_valid[s]].tolist()
                for s in range(s_count)
            ]
        passes = self._schedule_passes
        self.control.schedule(passes, detail=f"t={now}")
        if profile is not None:
            _t1 = time.perf_counter()
            acc = profile["schedule"]
            acc[0] += 1
            acc[1] += _t1 - _t0

        # Miss registration, batched over the scenarios that count them.
        if self._wrap:
            diff = (self._head_deadline - now) & _DL_MASK
            late = valid & (diff >= _DL_HALF)
        else:
            late = valid & (self._head_deadline < now)
        counting = np.asarray(count_s, dtype=bool)
        counted_late = late & counting[:, None]
        misses = [[] for _ in range(s_count)]
        if counted_late.any():
            miss_rows = counted_late.any(axis=1)
            for s in np.nonzero(miss_rows)[0]:
                misses[int(s)] = np.nonzero(counted_late[s])[0].tolist()
            self._register_misses(counted_late)

        # PRIORITY_UPDATE: per-scenario circulate/consume (queue-backed,
        # so the service path stays scalar like the batch engine's).
        update_cycles = self.config.update_cycles
        max_first = self.config.block_mode is BlockMode.MAX_FIRST
        outcomes: list[DecisionOutcome] = []
        any_circulated: int | None = None
        for s in range(s_count):
            order = orders[s]
            circulated: int | None = None
            serviced: list[tuple[int, PendingPacket]] = []
            if order:
                update_sid = order[0]
                circulated = order[0] if max_first else order[-1]
                policy = consume_s[s]
                if policy == "winner":
                    if count_s[s] and self._head_is_late(s, circulated, now):
                        packet = self._service(
                            s, circulated, now, as_winner=False
                        )
                    else:
                        packet = self._service(s, circulated, now)
                    if packet is not None:
                        serviced.append((circulated, PendingPacket(*packet)))
                elif policy == "block":
                    if self.config.routing is Routing.WR:
                        raise ValueError(
                            "block consumption requires BA routing "
                            "(WR emits only the winner)"
                        )
                    consume_order = (
                        order if max_first else list(reversed(order))
                    )
                    for sid in consume_order:
                        packet = self._service(
                            s, sid, now, as_winner=(sid == update_sid)
                        )
                        if packet is not None:
                            serviced.append((sid, PendingPacket(*packet)))
                self._wins[s, circulated] += 1
                any_circulated = circulated
            outcomes.append(
                DecisionOutcome(
                    now=now,
                    block=tuple(order),
                    circulated_sid=circulated,
                    serviced=tuple(serviced),
                    misses=tuple(misses[s]),
                    hw_cycles=passes + update_cycles,
                    dropped=tuple(dropped[s]),
                )
            )
        self.control.priority_update(
            update_cycles, detail=f"circulate={any_circulated}"
        )
        if profile is not None:
            acc = profile["priority_update"]
            acc[0] += 1
            acc[1] += time.perf_counter() - _t1
        if self.observers is not None:
            for s, observer in enumerate(self.observers):
                if observer is not None:
                    observer.on_decision(outcomes[s])
        return outcomes

    def advance_idle(self, count: int) -> None:
        """Bulk-account ``count`` decision cycles where nothing is live.

        The campaign-level idle fast-forward: callers that *know* no
        scenario has a pending head (and no arrivals land) skip the
        rank/network/update array ops entirely and advance the lockstep
        control accounting in O(1).
        """
        if count <= 0:
            return
        profile = self._phase_profile
        if profile is not None:
            _t0 = time.perf_counter()
        self.control.advance_decision_cycles(
            count,
            self._schedule_passes,
            self.config.update_cycles,
            detail="idle fast-forward",
        )
        self._fast_forwarded += count
        if profile is not None:
            acc = profile["fast_forward"]
            acc[0] += 1
            acc[1] += time.perf_counter() - _t0

    @property
    def has_pending(self) -> bool:
        """True when any scenario has a latched head."""
        return bool((self._has_head & self._loaded).any())

    def idle_outcome(self, now: int) -> DecisionOutcome:
        """The outcome every scenario observes on an idle cycle."""
        return DecisionOutcome(
            now=now,
            block=(),
            circulated_sid=None,
            serviced=(),
            misses=(),
            hw_cycles=self._schedule_passes + self.config.update_cycles,
            dropped=(),
        )

    # ------------------------------------------------------------------
    # self-advancing periodic workloads, tensorized whole-campaign runs
    # ------------------------------------------------------------------

    def run_periodic(
        self,
        n_cycles: int,
        *,
        offsets: np.ndarray | None = None,
        step: np.ndarray | int | None = None,
        stride: np.ndarray | int | None = None,
        consume: str = "winner",
        count_misses: bool = True,
        collect_winners: bool = False,
        fast_forward: bool = True,
    ) -> list[PeriodicRunResult]:
        """Run a periodic feed through *every* scenario in lockstep.

        The tensorized twin of
        :meth:`~repro.core.batch_engine.BatchScheduler.run_periodic`:
        per decision cycle, ranking, the winner selection, miss
        registration and the DWCS window updates each run as one
        ``(S, N)`` array op, so the whole campaign advances per cycle
        at (amortized) the Python cost of a single scenario.  Scenarios
        whose slots are all idle at ``t`` simply sit out that cycle;
        when the *entire campaign* is idle, ``now`` fast-forwards to
        the next release boundary with bulk control accounting.

        ``offsets``/``step``/``stride`` broadcast over ``(S, N)``.
        Returns one :class:`PeriodicRunResult` per scenario, each
        identical to the per-scenario ``BatchScheduler`` run.
        """
        if self._wrap:
            raise ValueError(
                "run_periodic requires ideal arithmetic (wrap=False)"
            )
        if consume not in ("winner", "block"):
            raise ValueError(f"unknown consume policy {consume!r}")
        if consume == "block" and self.config.routing is Routing.WR:
            raise ValueError(
                "block consumption requires BA routing "
                "(WR emits only the winner)"
            )
        s_count, n = self.n_scenarios, self._n
        shape = (s_count, n)
        loaded = self._loaded
        if offsets is None:
            offs = np.where(loaded, self._init_deadline, 0)
        else:
            offs = np.broadcast_to(
                np.asarray(offsets, dtype=np.int64), shape
            ).copy()
        if step is None:
            steps = self._period.copy()
        else:
            steps = np.broadcast_to(
                np.asarray(step, dtype=np.int64), shape
            ).copy()
        if stride is None:
            strides = np.ones(shape, dtype=np.int64)
        else:
            strides = np.broadcast_to(
                np.asarray(stride, dtype=np.int64), shape
            ).copy()
            if (strides < 1).any():
                raise ValueError("stride must be >= 1")

        consumed = np.zeros(shape, dtype=np.int64)
        bias = self._edf_bias
        edf = self._mode == _EDF
        max_first = self.config.block_mode is BlockMode.MAX_FIRST
        winner_only = self.config.winner_only
        winners = (
            np.full((s_count, n_cycles), -1, dtype=np.int64)
            if collect_winners
            else None
        )
        update_cycles = self.config.update_cycles
        srange = np.arange(s_count)
        t = 0
        while t < n_cycles:
            avail = consumed * strides
            valid = loaded & (avail <= t)
            active = valid.any(axis=1)
            if not active.any():
                if fast_forward:
                    pending = avail[loaded]
                    nxt = int(pending.min()) if pending.size else n_cycles
                    nxt = min(max(nxt, t + 1), n_cycles)
                    self.advance_idle(nxt - t)
                    t = nxt
                else:
                    self.control.schedule(
                        self._schedule_passes, detail=f"t={t}"
                    )
                    self.control.priority_update(
                        update_cycles, detail="circulate=None"
                    )
                    t += 1
                continue
            real_dl = offs + consumed * steps
            attr_dl = real_dl + np.where(edf, bias, 0)
            order = self._rank(t, valid, attr_dl, consumed, self._x, self._y)
            late = valid & (real_dl < t)
            if count_misses and late.any():
                self._register_misses(late)
            # Emitted block head / tail selection, one per scenario.
            w = order[:, 0]
            if winner_only or max_first:
                circulated = w
            else:
                emitted = self._emit_positions(order)
                emitted_valid = np.take_along_axis(valid, emitted, axis=1)
                # Last valid network position per scenario (block tail).
                last = n - 1 - np.argmax(emitted_valid[:, ::-1], axis=1)
                circulated = emitted[srange, last]
            rows = np.nonzero(active)[0]
            cols = circulated[rows]
            if consume == "winner":
                late_c = late[rows, cols]
                dw = self._dwcs_like[rows, cols]
                edf_c = edf[rows, cols]
                if count_misses:
                    # Late winners already took the miss-path loss
                    # update; only on-time winners get the win update.
                    win_mask = dw & ~late_c
                    loss_mask = np.zeros_like(late_c)
                    edf_mask = edf_c & ~late_c
                else:
                    win_mask = dw & ~late_c
                    loss_mask = dw & late_c
                    edf_mask = edf_c
                if win_mask.any():
                    self._win_update_at(rows[win_mask], cols[win_mask])
                if loss_mask.any():
                    self._loss_update_at(rows[loss_mask], cols[loss_mask])
                if edf_mask.any():
                    er, ec = rows[edf_mask], cols[edf_mask]
                    bias[er, ec] += steps[er, ec]
                self._serviced[rows, cols] += 1
                consumed[rows, cols] += 1
            else:  # block: every valid head consumed this cycle
                hr, hc = rows, w[rows]
                dw = self._dwcs_like[hr, hc]
                edf_c = edf[hr, hc]
                if dw.any():
                    self._win_update_at(hr[dw], hc[dw])
                if edf_c.any():
                    er, ec = hr[edf_c], hc[edf_c]
                    bias[er, ec] += steps[er, ec]
                self._serviced[valid] += 1
                consumed[valid] += 1
            self._wins[rows, cols] += 1
            if winners is not None:
                winners[rows, t] = cols
            self.control.schedule(self._schedule_passes, detail=f"t={t}")
            self.control.priority_update(
                update_cycles, detail="circulate=<campaign>"
            )
            t += 1
        return [
            PeriodicRunResult(
                n_streams=int(loaded[s].sum()),
                decision_cycles=n_cycles,
                wins=self._wins[s].copy(),
                misses=self._missed[s].copy(),
                serviced=self._serviced[s].copy(),
                frames_scheduled=int(self._serviced[s].sum()),
                winners=winners[s].copy() if winners is not None else None,
            )
            for s in range(s_count)
        ]

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    @property
    def cycles_per_decision(self) -> int:
        """Hardware cycles one decision cycle consumes."""
        return self.config.sort_passes + self.config.update_cycles

    @property
    def fast_forwarded(self) -> int:
        """Idle decision cycles skipped in bulk (campaign-wide)."""
        return self._fast_forwarded

    def _slot_counters(self, s: int, i: int) -> SlotCounters:
        return SlotCounters(
            wins=int(self._wins[s, i]),
            serviced=int(self._serviced[s, i]),
            missed_deadlines=int(self._missed[s, i]),
            violations=int(self._violations[s, i]),
            window_resets=int(self._window_resets[s, i]),
            loads=int(self._loads[s, i]),
        )

    def counters(self, scenario: int) -> dict[int, SlotCounters]:
        """Per-stream performance counters for one scenario."""
        return {
            i: self._slot_counters(scenario, i)
            for i in range(self._n)
            if self._configs[scenario][i] is not None
        }

    def phase_report(self) -> dict[str, tuple[int, float]]:
        """Accumulated ``phase -> (calls, wall_seconds)`` in fixed order.

        Empty unless the engine was built with ``profile_phases=True``.
        Call counts are a pure function of the workload (they feed
        canonical span tags); wall time is an execution detail.
        """
        if self._phase_profile is None:
            return {}
        return {
            name: (int(calls), float(wall))
            for name, (calls, wall) in self._phase_profile.items()
        }


class TensorScheduler:
    """Single-scenario adapter over :class:`CampaignEngine`.

    Drop-in for the reference and batch engines
    (``make_scheduler(..., engine="tensor")``): the full scheduler
    surface — ``load_stream`` / ``enqueue`` / ``decision_cycle`` /
    ``slot`` / ``counters`` / ``run_periodic`` / ``control`` /
    ``observer`` — backed by a one-row campaign, so the tensor code
    paths are exercised (and differentially validated) even at S=1.
    """

    def __init__(
        self,
        config: ArchConfig,
        streams: list[StreamConfig] | None = None,
        *,
        trace_timeline: bool = False,
        trace=None,
        observer=None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.observer = resolve_observer(trace, observer)
        self.trace_timeline = trace_timeline
        self._engine = CampaignEngine(
            config,
            [list(streams) if streams else None],
            observers=[self.observer] if self.observer is not None else None,
            trace_timeline=trace_timeline,
        )
        self.control = self._engine.control

    @property
    def engine(self) -> CampaignEngine:
        """The backing one-row campaign engine."""
        return self._engine

    def load_stream(self, stream: StreamConfig) -> TensorSlotView:
        """Bind a stream's service constraints to its stream-slot."""
        return self._engine.load_stream(0, stream)

    def slot(self, sid: int) -> TensorSlotView:
        """View of the slot bound to stream ``sid``."""
        return self._engine.slot(0, sid)

    @property
    def active_slots(self) -> list[TensorSlotView]:
        """All populated stream-slots, in slot order."""
        return [
            TensorSlotView(self._engine, 0, i)
            for i in range(self._engine._n)
            if self._engine._configs[0][i] is not None
        ]

    def enqueue(
        self, sid: int, deadline: int, arrival: int, length: int = 1500
    ) -> None:
        """Deposit one packet request into a slot's pending queue."""
        self._engine.enqueue(0, sid, deadline, arrival, length)

    def decision_cycle(
        self,
        now: int,
        *,
        consume: str = "winner",
        count_misses: bool = True,
        drop_late: bool = False,
    ) -> DecisionOutcome:
        """Run one full decision cycle at scheduler time ``now``."""
        return self._engine.decision_cycle_all(
            now,
            consume=consume,
            count_misses=count_misses,
            drop_late=drop_late,
        )[0]

    def run_periodic(self, n_cycles: int, **kwargs) -> PeriodicRunResult:
        """Single-scenario slice of :meth:`CampaignEngine.run_periodic`."""
        result = self._engine.run_periodic(n_cycles, **kwargs)[0]
        if self.observer is not None:
            summary_hook = getattr(self.observer, "on_run_summary", None)
            if summary_hook is not None:
                summary_hook(result)
        return result

    @property
    def cycles_per_decision(self) -> int:
        """Hardware cycles one decision cycle consumes."""
        return self._engine.cycles_per_decision

    @property
    def fast_forwarded(self) -> int:
        """Idle decision cycles skipped in bulk by ``run_periodic``."""
        return self._engine.fast_forwarded

    def counters(self) -> dict[int, SlotCounters]:
        """Per-stream performance counters, keyed by stream ID."""
        return self._engine.counters(0)
