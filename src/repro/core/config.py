"""Architecture configuration for one ShareStreams scheduler instance."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.fields import MAX_STREAM_SLOTS
from repro.core.shuffle import is_pow2

__all__ = ["Routing", "BlockMode", "ArchConfig"]


class Routing(enum.Enum):
    """Decision-block output routing (Section 4.3, Section 5.1).

    * ``BA`` — Base architecture: winners *and* losers are routed, so a
      whole sorted block is emitted every decision cycle.
    * ``WR`` — Winner-only routing (max-finding): only winners
      propagate; one max-priority stream is emitted.
    """

    BA = "ba"
    WR = "wr"


class BlockMode(enum.Enum):
    """Which end of the block is circulated during PRIORITY_UPDATE.

    ``MAX_FIRST`` circulates the highest-priority stream (the winner) —
    the correct configuration.  ``MIN_FIRST`` circulates the stream at
    the *end* of the block; Table 3 uses it as the control case showing
    that circulating the wrong end forfeits the block benefit.
    """

    MAX_FIRST = "max_first"
    MIN_FIRST = "min_first"


@dataclass(frozen=True, slots=True)
class ArchConfig:
    """Static configuration of a scheduler instance.

    Parameters
    ----------
    n_slots:
        Stream-slot count; a power of two between 2 and 32 (the 5-bit
        stream-ID field bounds a single chip at 32 slots, and the paper
        evaluates 4..32).
    routing:
        :class:`Routing` — BA (block) or WR (winner-only / max-finding).
    block_mode:
        Which block end is circulated in BA mode.
    schedule:
        Network sorting schedule, ``"paper"`` or ``"bitonic"``
        (see :mod:`repro.core.shuffle`).
    wrap:
        16-bit serial deadline arithmetic (hardware) vs ideal integers.
    deadline_only:
        Simple-comparator configuration (fair-queuing service tags).
    compute_ahead:
        The Section 6 micro-architectural extension: "compute-ahead
        Register Base blocks that compute state a cycle ahead by using
        predication".  Both the winner and loser next-states are
        computed speculatively during the last SCHEDULE pass and the
        circulated ID merely selects one, hiding the PRIORITY_UPDATE
        cycle.  Costs extra register-block area (see the area model).
    clock_mhz:
        Nominal FPGA clock for converting cycles to time; the hwmodel
        provides calibrated values per (n_slots, routing).
    extended:
        Lift the single-chip 32-slot cap (the 5-bit stream-ID wire
        field) for ideal-arithmetic studies of multi-chip scale.  The
        behavioral network and the batch engine both handle arbitrary
        power-of-two widths; the wire-format constraint is still
        enforced at the pack boundary
        (:func:`repro.core.attributes.pack_attributes`).
    """

    n_slots: int
    routing: Routing = Routing.BA
    block_mode: BlockMode = BlockMode.MAX_FIRST
    schedule: str = "paper"
    wrap: bool = True
    deadline_only: bool = False
    compute_ahead: bool = False
    clock_mhz: float = 66.0
    extended: bool = False

    def __post_init__(self) -> None:
        cap_ok = self.extended or self.n_slots <= MAX_STREAM_SLOTS
        if not is_pow2(self.n_slots) or self.n_slots < 2 or not cap_ok:
            raise ValueError(
                "n_slots must be a power of two in "
                f"[2, {MAX_STREAM_SLOTS}], got {self.n_slots} "
                "(pass extended=True for beyond-single-chip studies)"
            )
        if self.schedule not in ("paper", "bitonic"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    @property
    def winner_only(self) -> bool:
        """True for the WR (max-finding) configuration."""
        return self.routing is Routing.WR

    @property
    def sort_passes(self) -> int:
        """Network passes per SCHEDULE phase (log2 N in paper mode)."""
        k = self.n_slots.bit_length() - 1
        if self.schedule == "paper" or self.winner_only:
            return k
        return k * (k + 1) // 2

    @property
    def decision_blocks(self) -> int:
        """Physical Decision blocks in the single network stage (N/2)."""
        return self.n_slots // 2

    @property
    def update_cycles(self) -> int:
        """PRIORITY_UPDATE cycles per decision (0 when hidden by
        compute-ahead predication)."""
        return 0 if self.compute_ahead else 1
