"""The paper's primary contribution: the canonical scheduler architecture.

Cycle-level behavioral model of the ShareStreams FPGA scheduler core:
Register Base blocks (stream-slots), multi-attribute Decision blocks,
the recirculating shuffle-exchange network, and the Control & Steering
FSM, composed by :class:`~repro.core.scheduler.ShareStreamsScheduler`.
"""

from repro.core.attributes import (
    ATTRIBUTE_WORD_BITS,
    HardwareAttributes,
    SchedulingMode,
    StreamConfig,
    pack_attributes,
    unpack_attributes,
)
from repro.core.batch_engine import (
    BatchScheduler,
    BatchSlotView,
    PeriodicRunResult,
    build_bitonic_passes,
    make_scheduler,
)
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.control import ControlState, ControlUnit, TimelineEntry
from repro.core.decision_block import DecisionBlock, DecisionResult
from repro.core.fields import (
    MAX_STREAM_SLOTS,
    serial_add,
    serial_cmp,
    serial_distance,
    serial_lt,
    wrap,
)
from repro.core.register_block import (
    PendingPacket,
    RegisterBaseBlock,
    SlotCounters,
)
from repro.core.rules import Rule, RuleEvaluation, compare, evaluate, ordering_key
from repro.core.scheduler import DecisionOutcome, ShareStreamsScheduler
from repro.core.shuffle import (
    NetworkResult,
    ShuffleExchangeNetwork,
    perfect_shuffle,
)
from repro.core.hdl import emit_verilog
from repro.core.tag_mapping import ServiceTagFrontend, TaggedStream
from repro.core.tensor_engine import (
    CampaignEngine,
    TensorScheduler,
    TensorSlotView,
)

__all__ = [
    "ATTRIBUTE_WORD_BITS",
    "ArchConfig",
    "BatchScheduler",
    "BatchSlotView",
    "BlockMode",
    "CampaignEngine",
    "ControlState",
    "ControlUnit",
    "DecisionBlock",
    "DecisionOutcome",
    "DecisionResult",
    "HardwareAttributes",
    "MAX_STREAM_SLOTS",
    "NetworkResult",
    "PendingPacket",
    "PeriodicRunResult",
    "RegisterBaseBlock",
    "Routing",
    "Rule",
    "RuleEvaluation",
    "SchedulingMode",
    "ServiceTagFrontend",
    "ShareStreamsScheduler",
    "ShuffleExchangeNetwork",
    "SlotCounters",
    "StreamConfig",
    "TaggedStream",
    "TensorScheduler",
    "TensorSlotView",
    "TimelineEntry",
    "build_bitonic_passes",
    "compare",
    "emit_verilog",
    "evaluate",
    "make_scheduler",
    "ordering_key",
    "pack_attributes",
    "perfect_shuffle",
    "serial_add",
    "serial_cmp",
    "serial_distance",
    "serial_lt",
    "unpack_attributes",
    "wrap",
]
