"""Recirculating shuffle-exchange network of Decision blocks.

The ShareStreams architecture conserves area by arranging only ``N/2``
Decision blocks in a *single* network stage and recirculating the
attribute bundles through it (Section 3: "a recirculating shuffle ...
conserves area, and scales better by using only N/2 decision blocks in
a single-stage recirculating shuffle").  Each pass performs a perfect
shuffle of the ``N`` bundle positions followed by a compare-exchange of
adjacent pairs; ``log2(N)`` passes deliver the maximum-priority stream
to position 0 (a tournament folded onto one stage).

Sorting schedules
-----------------
``schedule="paper"``
    The paper's ``log2(N)``-pass recirculation.  It *certifies* the
    maximum (and, with reversed comparison on the mirrored pairs, the
    minimum); the rest of the emitted *block* is the partial order the
    hardware would produce.  This is the default, matching the paper.
``schedule="bitonic"``
    A full Batcher bitonic sorting schedule executed on the same
    ``N/2`` comparators, taking ``log2(N) * (log2(N)+1) / 2`` passes.
    It produces a certified total order; experiments that need an exact
    sorted block use it, and the ablation bench compares the two.

See DESIGN.md ("Known interpretation points") for why both exist.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import HardwareAttributes
from repro.core.decision_block import DecisionBlock
from repro.core.rules import compare

__all__ = ["NetworkResult", "ShuffleExchangeNetwork", "perfect_shuffle", "is_pow2"]


def is_pow2(n: int) -> bool:
    """Whether ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def perfect_shuffle(items: list) -> list:
    """Perfect shuffle: interleave the two halves of ``items``.

    ``[a, b, c, d] -> [a, c, b, d]`` — position ``2i`` receives element
    ``i`` and position ``2i+1`` receives element ``i + N/2``.  This is
    the fixed wiring between the register file and the decision stage.
    """
    n = len(items)
    if not is_pow2(n):
        raise ValueError(f"shuffle width must be a power of two, got {n}")
    half = n // 2
    out = [None] * n
    for i in range(half):
        out[2 * i] = items[i]
        out[2 * i + 1] = items[i + half]
    return out


@dataclass(frozen=True, slots=True)
class NetworkResult:
    """Outcome of one full recirculation (one SCHEDULE phase).

    Attributes
    ----------
    order:
        Attribute bundles in emitted priority order, position 0 being
        the highest-priority (winner) stream.  Under winner-only
        routing this contains just the winner.
    passes:
        Number of network passes (hardware cycles) consumed.
    comparisons:
        Total pairwise decisions made across all passes.
    """

    order: list[HardwareAttributes]
    passes: int
    comparisons: int

    @property
    def winner(self) -> HardwareAttributes:
        """The maximum-priority bundle (block head)."""
        return self.order[0]


class ShuffleExchangeNetwork:
    """Single-stage recirculating network over ``n_slots`` bundles.

    Parameters
    ----------
    n_slots:
        Number of stream-slots (power of two, 2..32 on one Virtex chip).
    wrap:
        16-bit serial deadline/arrival comparison (hardware behavior).
    deadline_only:
        Simple-comparator mode for fair-queuing service tags.
    schedule:
        ``"paper"`` (log2 N recirculation) or ``"bitonic"`` (full sort).
    """

    def __init__(
        self,
        n_slots: int,
        *,
        wrap: bool = True,
        deadline_only: bool = False,
        schedule: str = "paper",
    ) -> None:
        if not is_pow2(n_slots) or n_slots < 2:
            raise ValueError(
                f"n_slots must be a power of two >= 2, got {n_slots}"
            )
        if schedule not in ("paper", "bitonic"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.n_slots = n_slots
        self.schedule = schedule
        self.wrap = wrap
        self.deadline_only = deadline_only
        # The single physical stage: N/2 decision blocks, reused each pass.
        self.blocks = [
            DecisionBlock(index=i, wrap=wrap, deadline_only=deadline_only)
            for i in range(n_slots // 2)
        ]

    # ------------------------------------------------------------------

    @property
    def passes_per_decision(self) -> int:
        """Network passes one SCHEDULE phase consumes."""
        k = self.n_slots.bit_length() - 1
        if self.schedule == "paper":
            return k
        return k * (k + 1) // 2

    def _exchange(
        self, state: list[HardwareAttributes]
    ) -> list[HardwareAttributes]:
        """One pass: perfect shuffle then pairwise compare-exchange."""
        state = perfect_shuffle(state)
        for j, block in enumerate(self.blocks):
            a, b = state[2 * j], state[2 * j + 1]
            result = block.decide(a, b)
            state[2 * j] = result.winner
            state[2 * j + 1] = result.loser
        return state

    def _run_paper(
        self, bundles: list[HardwareAttributes]
    ) -> tuple[list[HardwareAttributes], int]:
        state = list(bundles)
        passes = self.n_slots.bit_length() - 1
        for _ in range(passes):
            state = self._exchange(state)
        return state, passes

    def _run_bitonic(
        self, bundles: list[HardwareAttributes]
    ) -> tuple[list[HardwareAttributes], int]:
        """Batcher bitonic sort using the same comparator pool.

        Pair geometry follows the classic network; each stage maps onto
        one recirculation pass of the ``N/2`` physical comparators (the
        steering muxes select the operand routing).  Ascending pairs put
        the higher-priority bundle at the lower index.
        """
        state = list(bundles)
        n = self.n_slots
        passes = 0
        block_cursor = 0
        k = 2
        while k <= n:
            j = k // 2
            while j >= 1:
                for i in range(n):
                    partner = i ^ j
                    if partner <= i:
                        continue
                    ascending = (i & k) == 0
                    block = self.blocks[block_cursor % len(self.blocks)]
                    block_cursor += 1
                    result = block.decide(state[i], state[partner])
                    if ascending:
                        state[i], state[partner] = result.winner, result.loser
                    else:
                        state[i], state[partner] = result.loser, result.winner
                passes += 1
                j //= 2
            k *= 2
        return state, passes

    # ------------------------------------------------------------------

    def run(
        self,
        bundles: list[HardwareAttributes],
        *,
        winner_only: bool = False,
    ) -> NetworkResult:
        """Execute one SCHEDULE phase over the slot attribute bundles.

        Parameters
        ----------
        bundles:
            One attribute bundle per stream-slot, in slot order.
        winner_only:
            Winner-only (WR / max-finding) routing: only the winner is
            emitted.  The pass count is identical (the tournament depth
            does not change); only the interconnect differs, which the
            area/clock model captures separately.
        """
        if len(bundles) != self.n_slots:
            raise ValueError(
                f"expected {self.n_slots} bundles, got {len(bundles)}"
            )
        before = sum(b.decisions for b in self.blocks)
        if self.schedule == "bitonic" and not winner_only:
            order, passes = self._run_bitonic(bundles)
        else:
            order, passes = self._run_paper(bundles)
        comparisons = sum(b.decisions for b in self.blocks) - before
        if winner_only:
            order = [order[0]]
        return NetworkResult(order=order, passes=passes, comparisons=comparisons)

    def reference_order(
        self, bundles: list[HardwareAttributes]
    ) -> list[HardwareAttributes]:
        """Certified total order via direct pairwise comparison.

        Uses an insertion sort driven by the same Table 2 comparator —
        the oracle the property tests compare network output against.
        """
        order: list[HardwareAttributes] = []
        for bundle in bundles:
            lo = 0
            while lo < len(order) and compare(
                order[lo], bundle, wrap=self.wrap, deadline_only=self.deadline_only
            ) < 0:
                lo += 1
            order.insert(lo, bundle)
        return order

    def reset_counters(self) -> None:
        """Clear all decision-block counters."""
        for block in self.blocks:
            block.reset_counters()
