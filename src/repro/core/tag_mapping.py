"""Mapping fair-queuing and priority-class disciplines onto the core.

Section 4.3, "Mapping Priority-class and Fair-queuing Schedulers":
fair-queuing service tags never change once computed, so the canonical
architecture runs them with just LOAD and SCHEDULE — the deadline field
carries the per-packet tag, the Decision blocks run in their
simple-comparator configuration, and the PRIORITY_UPDATE cycle is
bypassed ("An extra priority update cycle is not needed").

:class:`ServiceTagFrontend` is the systems-software half of that
mapping: it computes WFQ/SFQ-style virtual-time tags per packet (the
same arithmetic as :mod:`repro.disciplines.fair_queuing`), quantizes
them into the 16-bit deadline field, and deposits them into the
scheduler's stream-slots.  The hardware then orders N tagged packets in
``log2(N)`` cycles.

Priority-class mapping is the degenerate case: the "tag" is the
stream's static priority, loaded once.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import DecisionOutcome, ShareStreamsScheduler

__all__ = ["TaggedStream", "ServiceTagFrontend"]


@dataclass(slots=True)
class TaggedStream:
    """Per-stream tag state kept by the frontend (QM descriptor part)."""

    sid: int
    weight: float
    finish: float = 0.0
    queued: int = 0


class ServiceTagFrontend:
    """Software tag computation feeding a hardware tag-order scheduler.

    Parameters
    ----------
    n_slots:
        Stream-slot count of the underlying scheduler.
    flavor:
        ``"sfq"`` (start-time tags, default — what Click's comparison
        point uses) or ``"wfq"`` (finish-time tags).
    quantum:
        Tag units per 16-bit code point.  Virtual time is unbounded;
        the hardware field is 16 bits, so tags are quantized relative
        to the current virtual time and compared with the wrap-aware
        serial comparator — valid while in-flight tags stay within half
        the field's range (the frontend checks this).
    """

    def __init__(
        self,
        n_slots: int,
        *,
        flavor: str = "sfq",
        quantum: float = 64.0,
        wrap: bool = True,
    ) -> None:
        if flavor not in ("sfq", "wfq"):
            raise ValueError(f"unknown fair-queuing flavor {flavor!r}")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.flavor = flavor
        self.quantum = quantum
        self.wrap = wrap
        # Service-tag configuration: deadline-only comparators, no
        # priority-update attributes in play.
        self.arch = ArchConfig(
            n_slots=n_slots,
            routing=Routing.WR,
            deadline_only=True,
            wrap=wrap,
        )
        self.scheduler = ShareStreamsScheduler(self.arch)
        self.streams: dict[int, TaggedStream] = {}
        self.virtual_time = 0.0
        self._arrival_seq = 0
        # Unquantized tags per stream, FIFO-parallel to the slot queue
        # (the QM descriptor side of the mapping keeps full precision).
        self._pending_tags: dict[int, deque[float]] = {}

    # ------------------------------------------------------------------

    def add_stream(self, sid: int, weight: float = 1.0) -> None:
        """Register one weighted stream and bind its slot."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if sid in self.streams:
            raise ValueError(f"stream {sid} already registered")
        self.streams[sid] = TaggedStream(sid=sid, weight=weight)
        self._pending_tags[sid] = deque()
        self.scheduler.load_stream(
            StreamConfig(sid=sid, period=0, mode=SchedulingMode.SERVICE_TAG)
        )

    def _encode(self, tag: float) -> int:
        """Quantize a virtual-time tag into the 16-bit deadline field."""
        code = int(tag / self.quantum)
        if self.wrap:
            span = tag - self.virtual_time
            if span / self.quantum >= (1 << 15):
                raise OverflowError(
                    "tag spread exceeds the 16-bit serial comparison "
                    "horizon; increase quantum"
                )
            return code & 0xFFFF
        return code

    def enqueue(self, sid: int, length: int = 1500) -> float:
        """Tag one arriving packet and deposit it in the slot queue.

        Returns the assigned (unquantized) tag for inspection.
        """
        stream = self.streams[sid]
        start = max(stream.finish, self.virtual_time)
        finish = start + length / stream.weight
        stream.finish = finish
        tag = start if self.flavor == "sfq" else finish
        self._arrival_seq += 1
        self.scheduler.enqueue(
            sid,
            deadline=self._encode(tag),
            arrival=self._arrival_seq & 0xFFFF if self.wrap else self._arrival_seq,
            length=length,
        )
        stream.queued += 1
        self._pending_tags[sid].append(tag)
        return tag

    def dequeue(self) -> DecisionOutcome:
        """One hardware decision: LOAD + SCHEDULE only (no update).

        The winner's packet is consumed; virtual time advances per the
        flavor's rule.
        """
        outcome = self.scheduler.decision_cycle(
            0, consume="winner", count_misses=False
        )
        if outcome.circulated_sid is not None:
            sid = outcome.circulated_sid
            stream = self.streams[sid]
            stream.queued -= 1
            _, packet = outcome.serviced[0]
            served_tag = self._pending_tags[sid].popleft()
            if self.flavor == "sfq":
                # SFQ: virtual time = start tag of packet in service.
                self.virtual_time = max(self.virtual_time, served_tag)
            else:
                # WFQ approximation: advance by service share.
                active = sum(
                    s.weight for s in self.streams.values() if s.queued > 0
                ) or stream.weight
                self.virtual_time += packet.length / active
        return outcome

    @property
    def hw_cycles_per_decision(self) -> int:
        """SCHEDULE passes + the (bypassed-update) circulation cycle."""
        return self.scheduler.cycles_per_decision
