"""Per-stream service attributes stored in Register Base blocks.

Figure 4 of the paper shows the exact attribute bundle a Register Base
block ("stream-slot") drives onto the shuffle network each cycle:

* 16-bit packet **deadline**,
* 8-bit **loss numerator** ``x'`` (current window-constraint numerator),
* 8-bit **loss denominator** ``y'`` (current window-constraint denominator),
* 16-bit **arrival time** of the head packet,
* 5-bit **register / stream ID**.

:class:`HardwareAttributes` models that bundle (the mutable register
contents), and :class:`StreamConfig` the immutable stream service
*constraints* the systems software loads into a slot (request period
``T``, original window-constraint ``x/y``, scheduling mode).

The attributes can be packed into / unpacked from a single integer word
exactly as they travel over the recirculating shuffle wires, which the
tests use to show the behavioral model and the "wire" representation
agree bit-for-bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.fields import (
    ARRIVAL_FIELD,
    DEADLINE_FIELD,
    LOSS_DEN_FIELD,
    LOSS_NUM_FIELD,
    STREAM_ID_FIELD,
    serial_add,
)

__all__ = [
    "SchedulingMode",
    "StreamConfig",
    "HardwareAttributes",
    "pack_attributes",
    "unpack_attributes",
    "ATTRIBUTE_WORD_BITS",
]


class SchedulingMode(enum.Enum):
    """Per-stream scheduling mode mapped onto the canonical architecture.

    The unified architecture realizes a whole spectrum of disciplines by
    selecting which attributes participate in ordering and whether the
    PRIORITY_UPDATE cycle runs (Section 4.3):

    * ``DWCS`` — full window-constrained operation: all of Table 2's
      rules apply and winner/loser attribute adjustment runs every
      decision cycle.
    * ``EDF`` — earliest-deadline-first: ordering uses the deadline
      field only; the update cycle merely advances the winner's
      deadline by its request period.
    * ``STATIC_PRIORITY`` — the deadline field carries a time-invariant
      priority (smaller = more urgent); no attribute ever changes.
    * ``FAIR_SHARE`` — window-constraints encode bandwidth shares; DWCS
      adjustment yields proportional service (Section 5's 1:1:2:4 runs).
    * ``SERVICE_TAG`` — fair-queuing mapping: software computes a
      start/finish tag per packet, deposits it in the deadline field,
      and the update cycle is bypassed entirely (LOAD + SCHEDULE only).
    """

    DWCS = "dwcs"
    EDF = "edf"
    STATIC_PRIORITY = "static_priority"
    FAIR_SHARE = "fair_share"
    SERVICE_TAG = "service_tag"

    @property
    def updates_priority(self) -> bool:
        """Whether the PRIORITY_UPDATE cycle alters this stream's state."""
        return self in (
            SchedulingMode.DWCS,
            SchedulingMode.EDF,
            SchedulingMode.FAIR_SHARE,
        )


@dataclass(frozen=True, slots=True)
class StreamConfig:
    """Immutable service constraints for one stream (or streamlet set).

    Parameters
    ----------
    sid:
        Stream / register identifier (must fit the 5-bit field).
    period:
        Request period ``T`` — interval between deadlines of two
        successive packets of the stream, in scheduler time units.
    loss_numerator, loss_denominator:
        Original window-constraint ``W = x / y``: up to ``x`` packets
        may be lost or late in any window of ``y`` consecutive packets.
        ``(0, 0)`` means "no window constraint" (pure EDF behavior).
    initial_deadline:
        Deadline assigned to the first packet.
    mode:
        Scheduling mode mapped onto the slot; see :class:`SchedulingMode`.
    extended:
        Allow stream IDs beyond the 5-bit single-chip wire field, for
        ideal-arithmetic multi-chip studies (pairs with
        ``ArchConfig(extended=True)``).  Such bundles cannot be packed
        onto the 54-bit wire word.
    """

    sid: int
    period: int = 1
    loss_numerator: int = 0
    loss_denominator: int = 0
    initial_deadline: int = 0
    mode: SchedulingMode = SchedulingMode.DWCS
    extended: bool = False

    def __post_init__(self) -> None:
        if self.extended:
            if self.sid < 0:
                raise ValueError(f"sid must be non-negative, got {self.sid}")
        else:
            STREAM_ID_FIELD.check(self.sid)
        LOSS_NUM_FIELD.check(self.loss_numerator)
        LOSS_DEN_FIELD.check(self.loss_denominator)
        DEADLINE_FIELD.check(self.initial_deadline)
        if self.period < 0:
            raise ValueError(f"period must be non-negative, got {self.period}")
        if self.loss_numerator > self.loss_denominator:
            raise ValueError(
                "window-constraint numerator exceeds denominator: "
                f"{self.loss_numerator}/{self.loss_denominator}"
            )

    @property
    def window_constraint(self) -> float:
        """The original loss-tolerance ratio ``W = x / y`` (0 if y == 0)."""
        if self.loss_denominator == 0:
            return 0.0
        return self.loss_numerator / self.loss_denominator


@dataclass(slots=True)
class HardwareAttributes:
    """Mutable register contents of one stream-slot, as driven on wires.

    ``deadline`` and ``arrival`` are 16-bit serials; ``loss_numerator``
    / ``loss_denominator`` are the *current* window counters ``x'`` and
    ``y'`` that the PRIORITY_UPDATE cycle adjusts; ``sid`` tags the
    bundle so the winner ID can be circulated back (Figure 4).
    """

    sid: int
    deadline: int = 0
    loss_numerator: int = 0
    loss_denominator: int = 0
    arrival: int = 0
    valid: bool = True
    mode: SchedulingMode = field(default=SchedulingMode.DWCS)

    def __post_init__(self) -> None:
        # Only the window fields are hard 8-bit hardware quantities
        # everywhere; deadline/arrival may exceed 16 bits in the
        # *ideal-arithmetic* mode (wrap=False), and the stream ID may
        # exceed 5 bits in extended (multi-chip) configurations, so
        # their widths are enforced at the wire boundary
        # (:func:`pack_attributes`) and by the register blocks when
        # wrapping is on.
        if self.sid < 0:
            raise ValueError(f"sid must be non-negative, got {self.sid}")
        LOSS_NUM_FIELD.check(self.loss_numerator)
        LOSS_DEN_FIELD.check(self.loss_denominator)
        if self.deadline < 0 or self.arrival < 0:
            raise ValueError("deadline and arrival must be non-negative")

    @classmethod
    def from_config(cls, config: StreamConfig, arrival: int = 0) -> "HardwareAttributes":
        """Initialize slot registers from a loaded stream configuration."""
        return cls(
            sid=config.sid,
            deadline=config.initial_deadline,
            loss_numerator=config.loss_numerator,
            loss_denominator=config.loss_denominator,
            arrival=arrival,
            mode=config.mode,
        )

    @property
    def window_constraint(self) -> float:
        """Current loss-tolerance ratio ``W' = x' / y'`` (0 if y' == 0)."""
        if self.loss_denominator == 0:
            return 0.0
        return self.loss_numerator / self.loss_denominator

    def advance_deadline(self, period: int) -> None:
        """Move the deadline to the next request period (16-bit wrap)."""
        self.deadline = serial_add(self.deadline, period)

    def copy(self) -> "HardwareAttributes":
        """Value copy, as latched by a Decision block input register."""
        return HardwareAttributes(
            sid=self.sid,
            deadline=self.deadline,
            loss_numerator=self.loss_numerator,
            loss_denominator=self.loss_denominator,
            arrival=self.arrival,
            valid=self.valid,
            mode=self.mode,
        )


# Wire layout of the attribute bundle, most significant field first:
# deadline(16) | x'(8) | y'(8) | arrival(16) | sid(5) | valid(1)
_LAYOUT = (
    ("deadline", DEADLINE_FIELD.bits),
    ("loss_numerator", LOSS_NUM_FIELD.bits),
    ("loss_denominator", LOSS_DEN_FIELD.bits),
    ("arrival", ARRIVAL_FIELD.bits),
    ("sid", STREAM_ID_FIELD.bits),
    ("valid", 1),
)

#: Total width of the attribute bundle on the shuffle wires.
ATTRIBUTE_WORD_BITS = sum(bits for _, bits in _LAYOUT)


def pack_attributes(attrs: HardwareAttributes) -> int:
    """Pack an attribute bundle into the integer word carried on wires."""
    word = 0
    for name, bits in _LAYOUT:
        value = getattr(attrs, name)
        value = int(value)
        if not 0 <= value < (1 << bits):
            raise ValueError(f"{name}={value} does not fit in {bits} bits")
        word = (word << bits) | value
    return word


def unpack_attributes(word: int, mode: SchedulingMode = SchedulingMode.DWCS) -> HardwareAttributes:
    """Inverse of :func:`pack_attributes`."""
    if not 0 <= word < (1 << ATTRIBUTE_WORD_BITS):
        raise ValueError(f"word {word} does not fit in {ATTRIBUTE_WORD_BITS} bits")
    values: dict[str, int] = {}
    for name, bits in reversed(_LAYOUT):
        values[name] = word & ((1 << bits) - 1)
        word >>= bits
    return HardwareAttributes(
        sid=values["sid"],
        deadline=values["deadline"],
        loss_numerator=values["loss_numerator"],
        loss_denominator=values["loss_denominator"],
        arrival=values["arrival"],
        valid=bool(values["valid"]),
        mode=mode,
    )
