"""Bit-true Decision-block datapath on packed attribute words.

:mod:`repro.core.rules` models the Decision block over attribute
*objects*.  This module re-implements the same single-cycle decision at
the level the hardware actually works: field extraction and comparison
on the packed 54-bit words that travel the shuffle wires
(see :func:`repro.core.attributes.pack_attributes` for the layout).

Every predicate is computed the way combinational logic would:

* 16-bit *serial* deadline/arrival comparison as a subtract-and-test-
  MSB on the wrapped difference;
* window-constraint comparison as two 8x8 multiplies (the products the
  paper wants on Virtex-II hard multipliers) plus zero-detectors;
* a priority encoder selecting the fired rule.

The property tests drive random words through both implementations and
require bit-identical winners — the repository's "RTL vs golden model"
check.
"""

from __future__ import annotations

from repro.core.attributes import ATTRIBUTE_WORD_BITS

__all__ = [
    "extract_fields",
    "serial_less_16",
    "compare_packed",
    "decide_packed",
]

# Field offsets (LSB positions) in the packed word, derived from the
# layout: deadline(16) | x(8) | y(8) | arrival(16) | sid(5) | valid(1).
_VALID_POS = 0
_SID_POS = 1
_ARRIVAL_POS = 6
_Y_POS = 22
_X_POS = 30
_DEADLINE_POS = 38

_MASK16 = 0xFFFF
_MASK8 = 0xFF
_MASK5 = 0x1F


def extract_fields(word: int) -> tuple[int, int, int, int, int, int]:
    """Split a packed word into (deadline, x, y, arrival, sid, valid)."""
    if not 0 <= word < (1 << ATTRIBUTE_WORD_BITS):
        raise ValueError("word out of range for the attribute layout")
    return (
        (word >> _DEADLINE_POS) & _MASK16,
        (word >> _X_POS) & _MASK8,
        (word >> _Y_POS) & _MASK8,
        (word >> _ARRIVAL_POS) & _MASK16,
        (word >> _SID_POS) & _MASK5,
        (word >> _VALID_POS) & 1,
    )


def serial_less_16(a: int, b: int) -> bool:
    """16-bit serial (wrap-aware) a < b: subtract, test the MSB.

    The hardware computes ``b - a`` modulo 2**16 and declares ``a``
    earlier when the difference is non-zero with a clear... precisely:
    ``a`` precedes ``b`` iff ``(a - b) mod 2**16`` has its MSB set.
    """
    if a == b:
        return False
    return ((a - b) & _MASK16) >= 0x8000


def compare_packed(word_a: int, word_b: int, *, deadline_only: bool = False) -> int:
    """Single-cycle pairwise decision on packed words.

    Returns ``-1`` when ``word_a`` wins (higher priority), ``+1`` when
    ``word_b`` does — the same contract as
    :func:`repro.core.rules.compare` with ``wrap=True``.
    """
    dl_a, x_a, y_a, ar_a, sid_a, v_a = extract_fields(word_a)
    dl_b, x_b, y_b, ar_b, sid_b, v_b = extract_fields(word_b)

    # Concurrent predicate evaluation (all "gates" computed up-front).
    a_first_validity = v_a and not v_b
    b_first_validity = v_b and not v_a
    dl_a_lt = serial_less_16(dl_a, dl_b)
    dl_b_lt = serial_less_16(dl_b, dl_a)
    a_zero = (x_a == 0) | (y_a == 0)
    b_zero = (x_b == 0) | (y_b == 0)
    # 8x8 hard-multiplier products for the ratio comparison.
    prod_a = x_a * y_b
    prod_b = x_b * y_a
    ar_a_lt = serial_less_16(ar_a, ar_b)
    ar_b_lt = serial_less_16(ar_b, ar_a)

    # Priority encoder (the Figure 5 mux cascade).
    if a_first_validity:
        return -1
    if b_first_validity:
        return 1
    if dl_a_lt:
        return -1
    if dl_b_lt:
        return 1
    if not deadline_only:
        if a_zero and b_zero:
            if y_a != y_b:
                return -1 if y_a > y_b else 1
        elif a_zero != b_zero:
            return -1 if a_zero else 1
        else:
            if prod_a != prod_b:
                return -1 if prod_a < prod_b else 1
            if x_a != x_b:
                return -1 if x_a < x_b else 1
    if ar_a_lt:
        return -1
    if ar_b_lt:
        return 1
    return -1 if sid_a <= sid_b else 1


def decide_packed(
    word_a: int, word_b: int, *, deadline_only: bool = False
) -> tuple[int, int]:
    """Winner/loser ports of the packed-word Decision block."""
    if compare_packed(word_a, word_b, deadline_only=deadline_only) < 0:
        return word_a, word_b
    return word_b, word_a
