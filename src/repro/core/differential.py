"""Differential cross-validation of the fast engines against the oracle.

The object model (:class:`~repro.core.scheduler.ShareStreamsScheduler`)
is the trusted, cycle-level reconstruction of the hardware; the batch
engine (:class:`~repro.core.batch_engine.BatchScheduler`) and the
scenario-tensorized campaign engine
(:class:`~repro.core.tensor_engine.CampaignEngine`) are the fast
paths.  This module runs the oracle and a fast engine on the same
seeded scenario and asserts cycle-by-cycle identical behavior:

* the emitted block and circulated winner of every decision cycle,
* the serviced-packet stream (``(sid, deadline, arrival, length)``),
* per-cycle miss registrations and dropped packets,
* final per-slot performance counters (wins, serviced, misses,
  violations, window resets, loads).

Scenarios are generated from a single integer seed, so any divergence
is reproducible from the seed alone — the test harness prints it on
failure.  See ``docs/ENGINES.md`` for the oracle/fast-path contract.

A second mode turns the observability layer itself into a correctness
oracle: :func:`cross_validate_traces` attaches a structured
:class:`~repro.observability.TraceRecorder` to each engine and compares
the *telemetry event streams* event-by-event (and their canonical byte
serializations), so the hook wiring, the event flattening and the
scheduling behavior are all certified together.

Run a standalone campaign with::

    PYTHONPATH=src python -m repro.core.differential --count 200
    PYTHONPATH=src python -m repro.core.differential --count 60 --trace-equivalence

Campaigns are seed-indexed and embarrassingly parallel; ``--workers N``
shards them across cores via :mod:`repro.runner` (merged summary
byte-identical to the sequential run) and ``--cache-dir`` memoizes
already-validated scenarios on disk so warm re-runs skip them::

    PYTHONPATH=src python -m repro.core.differential \\
        --count 200 --cycles 1000 --workers 4 --cache-dir .diffcache

``--engine tensor`` validates the campaign engine instead: scenarios
are bucketed by architecture shape (:func:`bucket_key`) and every
bucket runs as *one* tensorized ``(S, N)`` evaluation
(:func:`run_bucket`), cross-validated per scenario against the oracle.
The merged summary stays byte-identical to the sequential batch-engine
campaign, and per-bucket telemetry is merged via the
:func:`repro.observability.metrics.merge_snapshots` machinery.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.backend import BACKENDS
from repro.core.batch_engine import BatchScheduler
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.observability.events import TraceRecorder
from repro.observability.spans import SpanTracer, activate_tracer, current_tracer

__all__ = [
    "Scenario",
    "CycleRecord",
    "EngineTrace",
    "Divergence",
    "SeedOutcome",
    "BucketOutcome",
    "generate_scenario",
    "build_engine",
    "run_engine",
    "bucket_key",
    "run_bucket",
    "cross_validate",
    "cross_validate_traces",
    "cross_validate_bucket",
    "validate_seed",
    "validate_bucket",
    "campaign",
    "RankValidation",
    "validate_rank_function",
]

#: Disciplines the scenario generator samples (≥ 2 required by the
#: acceptance criteria; we span four).
_MODES = (
    SchedulingMode.DWCS,
    SchedulingMode.EDF,
    SchedulingMode.STATIC_PRIORITY,
    SchedulingMode.FAIR_SHARE,
)

# Wrapped (16-bit) scenarios must respect the serial-arithmetic
# contract: live deadlines/arrivals stay within half the horizon
# (32768) of the current time.  Bounding the per-cycle deadline offset
# keeps every live value well inside it.
_MAX_DEADLINE_OFFSET = 2048


@dataclass(frozen=True, slots=True)
class Scenario:
    """One fully-specified differential scenario (derived from a seed)."""

    seed: int
    n_slots: int
    routing: Routing
    block_mode: BlockMode
    schedule: str
    wrap: bool
    extended: bool
    streams: tuple[StreamConfig, ...]
    n_cycles: int
    consume: str
    count_misses: bool
    drop_late_prob: float
    arrival_prob: float
    max_deadline_offset: int

    def describe(self) -> str:
        modes = sorted({s.mode.value for s in self.streams})
        return (
            f"seed={self.seed} n_slots={self.n_slots} "
            f"streams={len(self.streams)} routing={self.routing.value} "
            f"block_mode={self.block_mode.value} "
            f"schedule={self.schedule} wrap={self.wrap} "
            f"consume={self.consume} count_misses={self.count_misses} "
            f"cycles={self.n_cycles} modes={modes}"
        )


@dataclass(frozen=True, slots=True)
class CycleRecord:
    """Observable outcome of one decision cycle, engine-agnostic."""

    now: int
    block: tuple[int, ...]
    circulated: int | None
    serviced: tuple[tuple[int, int, int, int], ...]
    misses: tuple[int, ...]
    hw_cycles: int
    dropped: tuple[tuple[int, int, int], ...]


@dataclass(frozen=True, slots=True)
class EngineTrace:
    """Full observable trace of one engine over one scenario."""

    engine: str
    records: tuple[CycleRecord, ...]
    counters: dict[int, tuple[int, int, int, int, int, int]]


@dataclass(frozen=True, slots=True)
class Divergence:
    """First observed disagreement between the two engines."""

    scenario: Scenario
    cycle: int | None  # None: counter (end-of-run) divergence
    field: str
    reference: object
    batch: object

    def __str__(self) -> str:
        where = "final counters" if self.cycle is None else f"cycle {self.cycle}"
        return (
            f"engines diverged at {where} on {self.field}\n"
            f"  scenario: {self.scenario.describe()}\n"
            f"  reference: {self.reference!r}\n"
            f"  batch:     {self.batch!r}\n"
            f"reproduce with: cross_validate(generate_scenario("
            f"{self.scenario.seed}))"
        )


def generate_scenario(
    seed: int,
    *,
    n_cycles: int = 1000,
    max_slots: int = 64,
) -> Scenario:
    """Derive a randomized scenario deterministically from ``seed``.

    Samples both routings, both block modes, both sorting schedules,
    wrapped and ideal arithmetic, 1..``max_slots`` streams and all four
    update disciplines — the design space the acceptance criteria
    require the campaign to span.
    """
    rng = random.Random(seed ^ 0x5EED)
    slot_choices = [n for n in (2, 4, 8, 16, 32, 64) if n <= max_slots]
    n_slots = rng.choice(slot_choices)
    extended = n_slots > 32
    routing = rng.choice((Routing.BA, Routing.WR))
    block_mode = rng.choice((BlockMode.MAX_FIRST, BlockMode.MIN_FIRST))
    schedule = rng.choice(("paper", "bitonic"))
    wrap = rng.random() < 0.5
    n_streams = rng.randint(1, n_slots)
    sids = rng.sample(range(n_slots), n_streams)
    streams = []
    for sid in sids:
        mode = rng.choice(_MODES)
        y = rng.randint(0, 12)
        x = rng.randint(0, y) if y else 0
        streams.append(
            StreamConfig(
                sid=sid,
                period=rng.randint(1, 8),
                loss_numerator=x,
                loss_denominator=y,
                initial_deadline=rng.randint(0, 64),
                mode=mode,
                extended=extended,
            )
        )
    if routing is Routing.WR:
        consume = "winner"
    else:
        consume = rng.choice(("winner", "winner", "block", "none"))
    return Scenario(
        seed=seed,
        n_slots=n_slots,
        routing=routing,
        block_mode=block_mode,
        schedule=schedule,
        wrap=wrap,
        extended=extended,
        streams=tuple(streams),
        n_cycles=n_cycles,
        consume=consume,
        count_misses=rng.random() < 0.85,
        drop_late_prob=rng.choice((0.0, 0.0, 0.05, 0.2)),
        arrival_prob=rng.uniform(0.1, 0.9),
        max_deadline_offset=rng.randint(8, _MAX_DEADLINE_OFFSET),
    )


def _arch_config(scenario: Scenario) -> ArchConfig:
    return ArchConfig(
        n_slots=scenario.n_slots,
        routing=scenario.routing,
        block_mode=scenario.block_mode,
        schedule=scenario.schedule,
        wrap=scenario.wrap,
        extended=scenario.extended,
    )


def build_engine(
    scenario: Scenario, engine: str, *, observer=None,
    engine_backend: str = "numpy",
):
    """Instantiate one engine (``reference``/``batch``/``tensor``).

    ``engine_backend`` selects the tensor engine's array namespace
    (:mod:`repro.core.backend`); the reference and batch engines are
    NumPy-only and reject any other value.
    """
    config = _arch_config(scenario)
    if engine != "tensor" and engine_backend != "numpy":
        raise ValueError(
            f"engine_backend={engine_backend!r} requires engine='tensor'"
        )
    if engine == "reference":
        return ShareStreamsScheduler(
            config, list(scenario.streams), observer=observer
        )
    if engine == "batch":
        return BatchScheduler(config, list(scenario.streams), observer=observer)
    if engine == "tensor":
        from repro.core.tensor_engine import TensorScheduler

        return TensorScheduler(
            config, list(scenario.streams), observer=observer,
            engine_backend=engine_backend,
        )
    raise ValueError(f"unknown engine {engine!r}")


def _arrival_schedule(scenario: Scenario):
    """Per-cycle arrival/drop decisions, derived from the seed alone.

    Generated once and replayed identically into both engines so the
    workloads are bit-identical.
    """
    rng = random.Random(scenario.seed ^ 0xA4414A1)
    schedule = []
    for t in range(scenario.n_cycles):
        arrivals = []
        for stream in scenario.streams:
            if rng.random() < scenario.arrival_prob:
                offset = rng.randint(0, scenario.max_deadline_offset)
                arrivals.append((stream.sid, t + offset, t))
        drop = rng.random() < scenario.drop_late_prob
        schedule.append((arrivals, drop))
    return schedule


def _cycle_record(outcome) -> CycleRecord:
    """Flatten a :class:`DecisionOutcome` into an engine-agnostic record."""
    return CycleRecord(
        now=outcome.now,
        block=outcome.block,
        circulated=outcome.circulated_sid,
        serviced=tuple(
            (sid, p.deadline, p.arrival, p.length)
            for sid, p in outcome.serviced
        ),
        misses=outcome.misses,
        hw_cycles=outcome.hw_cycles,
        dropped=tuple(
            (sid, p.deadline, p.arrival) for sid, p in outcome.dropped
        ),
    )


def run_engine(
    scenario: Scenario, engine: str, *, observer=None,
    engine_backend: str = "numpy",
) -> EngineTrace:
    """Execute ``scenario`` on one engine, recording every observable."""
    sched = build_engine(
        scenario, engine, observer=observer, engine_backend=engine_backend
    )
    records = []
    for t, (arrivals, drop) in enumerate(_arrival_schedule(scenario)):
        for sid, deadline, arrival in arrivals:
            sched.enqueue(sid, deadline, arrival)
        outcome = sched.decision_cycle(
            t,
            consume=scenario.consume,
            count_misses=scenario.count_misses,
            drop_late=drop,
        )
        records.append(_cycle_record(outcome))
    counters = {
        sid: (
            c.wins,
            c.serviced,
            c.missed_deadlines,
            c.violations,
            c.window_resets,
            c.loads,
        )
        for sid, c in sched.counters().items()
    }
    return EngineTrace(engine=engine, records=tuple(records), counters=counters)


_CYCLE_FIELDS = (
    "block",
    "circulated",
    "serviced",
    "misses",
    "hw_cycles",
    "dropped",
)


def _compare_traces(
    scenario: Scenario, ref: EngineTrace, fast: EngineTrace
) -> Divergence | None:
    """First record/counter disagreement between two engine traces."""
    for t, (r, b) in enumerate(zip(ref.records, fast.records)):
        if r != b:
            for name in _CYCLE_FIELDS:
                if getattr(r, name) != getattr(b, name):
                    return Divergence(
                        scenario, t, name, getattr(r, name), getattr(b, name)
                    )
    if ref.counters != fast.counters:
        return Divergence(
            scenario, None, "counters", ref.counters, fast.counters
        )
    return None


def _compare_event_streams(
    scenario: Scenario, ref_rec: TraceRecorder, fast_rec: TraceRecorder
) -> Divergence | None:
    """First telemetry-event disagreement between two recorders."""
    ref_events = ref_rec.events()
    fast_events = fast_rec.events()
    for i, (r, b) in enumerate(zip(ref_events, fast_events)):
        if r != b:
            return Divergence(scenario, i, "trace_event", r, b)
    if len(ref_events) != len(fast_events):
        return Divergence(
            scenario, None, "trace_length", len(ref_events), len(fast_events)
        )
    # Event equality implies serialization equality; assert it anyway so
    # the canonical byte format itself stays deterministic.
    if ref_rec.serialize() != fast_rec.serialize():
        return Divergence(
            scenario, None, "trace_serialization", "<bytes>", "<bytes>"
        )
    return None


def cross_validate(
    scenario: Scenario, engine: str = "batch",
    engine_backend: str = "numpy",
) -> Divergence | None:
    """Run the oracle and one fast engine; return the first divergence.

    ``None`` means the engines agreed on every decision cycle and on
    the final performance counters.  ``engine_backend`` selects the
    fast engine's array namespace (tensor engine only); the reference
    run always executes on NumPy, so a passing campaign proves the
    alternate backend byte-identical to the oracle.
    """
    ref = run_engine(scenario, "reference")
    fast = run_engine(scenario, engine, engine_backend=engine_backend)
    return _compare_traces(scenario, ref, fast)


def cross_validate_traces(
    scenario: Scenario, engine: str = "batch",
    engine_backend: str = "numpy",
) -> Divergence | None:
    """Run both engines under telemetry; compare the trace streams.

    Attaches a fresh :class:`~repro.observability.TraceRecorder` to
    each engine and asserts the structured decision-trace event streams
    are identical event-by-event *and* byte-identical under canonical
    serialization — observability as a correctness oracle.  ``None``
    means no divergence.
    """
    ref_rec = TraceRecorder()
    fast_rec = TraceRecorder()
    run_engine(scenario, "reference", observer=ref_rec)
    run_engine(
        scenario, engine, observer=fast_rec, engine_backend=engine_backend
    )
    return _compare_event_streams(scenario, ref_rec, fast_rec)


# ---------------------------------------------------------------------------
# same-shape bucketing: whole-bucket tensorized execution
# ---------------------------------------------------------------------------


def bucket_key(scenario: Scenario) -> tuple:
    """The same-shape bucketing key for the campaign engine.

    Scenarios sharing this key run the same architecture — slot count,
    routing, block mode, sorting schedule, wrap/extended arithmetic —
    and the same cycle count, so they can ride one
    :class:`~repro.core.tensor_engine.CampaignEngine` as rows of its
    ``(S, N)`` state (the bucketing contract in ``docs/ENGINES.md``).
    Per-stream constraints, disciplines, consume policies and workloads
    vary freely within a bucket.
    """
    return (
        scenario.n_slots,
        scenario.routing.value,
        scenario.block_mode.value,
        scenario.schedule,
        scenario.wrap,
        scenario.extended,
        scenario.n_cycles,
    )


def run_bucket(
    scenarios, *, observers=None, stats: dict | None = None,
    tracer: SpanTracer | None = None, engine_backend: str = "numpy",
) -> list[EngineTrace]:
    """Execute a same-shape bucket as one tensorized campaign.

    All scenarios advance in lockstep through one
    :class:`~repro.core.tensor_engine.CampaignEngine`; each returned
    :class:`EngineTrace` is cycle-for-cycle what the scenario would
    produce on its own engine.  Cycles where *no* scenario has a
    pending head and none receives an arrival are fast-forwarded: the
    control accounting advances in bulk and the per-cycle idle records
    (identical by construction) are synthesized without touching the
    array pipeline.  ``stats`` (optional dict) receives
    ``fast_forwarded`` and ``cycles`` totals for telemetry.
    """
    from repro.core.tensor_engine import CampaignEngine

    scenarios = list(scenarios)
    if not scenarios:
        return []
    first = scenarios[0]
    key = bucket_key(first)
    for scenario in scenarios[1:]:
        if bucket_key(scenario) != key:
            raise ValueError(
                "bucket mixes scenario shapes: "
                f"{bucket_key(scenario)} != {key}"
            )
    n_scenarios = len(scenarios)
    n_cycles = first.n_cycles
    engine = CampaignEngine(
        _arch_config(first),
        [list(scenario.streams) for scenario in scenarios],
        observers=list(observers) if observers is not None else None,
        profile_phases=tracer is not None,
        engine_backend=engine_backend,
    )
    schedules = [_arrival_schedule(scenario) for scenario in scenarios]
    consume = [scenario.consume for scenario in scenarios]
    count_misses = [scenario.count_misses for scenario in scenarios]
    # next_arrival[t]: first cycle >= t where any scenario enqueues.
    next_arrival = [n_cycles] * (n_cycles + 1)
    for t in range(n_cycles - 1, -1, -1):
        has_arrival = any(schedules[s][t][0] for s in range(n_scenarios))
        next_arrival[t] = t if has_arrival else next_arrival[t + 1]
    records: list[list[CycleRecord]] = [[] for _ in range(n_scenarios)]
    t = 0
    while t < n_cycles:
        if not engine.has_pending and next_arrival[t] > t:
            # Campaign-wide idle gap: bulk-account the skipped decision
            # cycles and synthesize the records the oracle would emit.
            nxt = min(next_arrival[t], n_cycles)
            engine.advance_idle(nxt - t)
            for tt in range(t, nxt):
                idle = engine.idle_outcome(tt)
                record = _cycle_record(idle)
                for s in range(n_scenarios):
                    records[s].append(record)
                    if observers is not None and observers[s] is not None:
                        observers[s].on_decision(idle)
            t = nxt
            continue
        for s, schedule in enumerate(schedules):
            for sid, deadline, arrival in schedule[t][0]:
                engine.enqueue(s, sid, deadline, arrival)
        outcomes = engine.decision_cycle_all(
            t,
            consume=consume,
            count_misses=count_misses,
            drop_late=[schedules[s][t][1] for s in range(n_scenarios)],
        )
        for s, outcome in enumerate(outcomes):
            records[s].append(_cycle_record(outcome))
        t += 1
    if stats is not None:
        stats["fast_forwarded"] = (
            stats.get("fast_forwarded", 0) + engine.fast_forwarded
        )
        stats["cycles"] = stats.get("cycles", 0) + n_cycles * n_scenarios
    if tracer is not None:
        # One aggregated span per engine phase (fixed emission order);
        # call counts are workload-derived (canonical tags), wall time
        # is an execution detail (measures).
        for phase, (calls, wall_s) in engine.phase_report().items():
            span_tags = {"calls": calls}
            if phase == "fast_forward":
                span_tags["cycles"] = engine.fast_forwarded
            tracer.record_span(
                phase,
                kind="phase",
                tags=span_tags,
                measures={"wall_us": int(wall_s * 1e6)},
            )
    return [
        EngineTrace(
            engine="tensor",
            records=tuple(records[s]),
            counters={
                sid: (
                    c.wins,
                    c.serviced,
                    c.missed_deadlines,
                    c.violations,
                    c.window_resets,
                    c.loads,
                )
                for sid, c in engine.counters(s).items()
            },
        )
        for s in range(n_scenarios)
    ]


def cross_validate_bucket(
    scenarios, mode: str = "outcome", *, stats: dict | None = None,
    tracer: SpanTracer | None = None, engine_backend: str = "numpy",
) -> list[Divergence | None]:
    """Cross-validate a same-shape bucket: oracle vs campaign engine.

    The bucket runs *once* through the tensorized engine; every
    scenario is then compared against its own reference run
    (``mode="outcome"``: cycle records + counters; ``mode="trace"``:
    structured telemetry event streams).
    """
    scenarios = list(scenarios)
    if mode == "trace":
        recorders = [TraceRecorder() for _ in scenarios]
        run_bucket(
            scenarios, observers=recorders, stats=stats, tracer=tracer,
            engine_backend=engine_backend,
        )
        results: list[Divergence | None] = []
        for scenario, recorder in zip(scenarios, recorders):
            ref_rec = TraceRecorder()
            run_engine(scenario, "reference", observer=ref_rec)
            results.append(
                _compare_event_streams(scenario, ref_rec, recorder)
            )
        return results
    tensor_traces = run_bucket(
        scenarios, stats=stats, tracer=tracer, engine_backend=engine_backend
    )
    return [
        _compare_traces(scenario, run_engine(scenario, "reference"), trace)
        for scenario, trace in zip(scenarios, tensor_traces)
    ]


@dataclass(frozen=True, slots=True)
class SeedOutcome:
    """One seed's contribution to a campaign (picklable, cache-able).

    Coverage fields are enum *values* (plain strings) so the outcome
    survives a JSON round-trip through the on-disk scenario cache
    unchanged; only passing seeds are ever cached, so ``divergence``
    is always ``None`` for cache hits.
    """

    seed: int
    routing: str
    block_mode: str
    modes: tuple[str, ...]
    divergence: Divergence | None = None


def _seed_outcome(scenario: Scenario, divergence: Divergence | None) -> SeedOutcome:
    return SeedOutcome(
        seed=scenario.seed,
        routing=scenario.routing.value,
        block_mode=scenario.block_mode.value,
        modes=tuple(sorted({s.mode.value for s in scenario.streams})),
        divergence=divergence,
    )


def validate_seed(
    seed: int, n_cycles: int = 1000, mode: str = "outcome",
    engine: str = "batch", engine_backend: str = "numpy",
) -> SeedOutcome:
    """Cross-validate one seed; the sharded campaign's unit of work.

    Module-level and fully determined by its arguments, so it can run
    in any worker process (:func:`repro.runner.run_sharded`) and its
    result can be merged or cached independently of every other seed.
    ``engine="tensor"`` validates the single-scenario adapter; the
    bucketed tensor campaign uses :func:`validate_bucket` instead.
    """
    validate = cross_validate if mode == "outcome" else cross_validate_traces
    scenario = generate_scenario(seed, n_cycles=n_cycles)
    tracer = current_tracer()
    if tracer is None:
        return _seed_outcome(
            scenario, validate(scenario, engine, engine_backend)
        )
    with tracer.span(
        "engine_run", kind="engine-run",
        seed=seed, engine=engine, n_cycles=n_cycles,
    ) as sp:
        outcome = _seed_outcome(
            scenario, validate(scenario, engine, engine_backend)
        )
        sp.tag(diverged=outcome.divergence is not None)
    return outcome


@dataclass(frozen=True, slots=True)
class BucketOutcome:
    """One same-shape bucket's contribution to a tensor campaign.

    Picklable unit of work for the sharded bucketed path: the per-seed
    outcomes (in bucket order) plus the bucket's telemetry snapshot,
    merged into the campaign result via
    :func:`repro.observability.metrics.merge_snapshots`.
    """

    outcomes: tuple[SeedOutcome, ...]
    telemetry: dict


def validate_bucket(
    seeds, n_cycles: int = 1000, mode: str = "outcome",
    engine_backend: str = "numpy",
) -> BucketOutcome:
    """Cross-validate one same-shape bucket of seeds tensorized.

    The sharded tensor campaign's unit of work: regenerates the bucket's
    scenarios from the seeds, runs them as one
    :class:`~repro.core.tensor_engine.CampaignEngine` evaluation and
    compares each row against its reference run.  Also labels the
    bucket's execution telemetry (scenario/cycle/fast-forward counts)
    so shards can be merged with the PR 4 ``absorb`` machinery.
    """
    from repro.observability import MetricsRegistry

    scenarios = [generate_scenario(seed, n_cycles=n_cycles) for seed in seeds]
    stats: dict = {}
    tracer = current_tracer()
    if tracer is None:
        divergences = cross_validate_bucket(
            scenarios, mode, stats=stats, engine_backend=engine_backend
        )
    else:
        with tracer.span(
            "engine_run", kind="engine-run",
            scenarios=len(scenarios), n_cycles=n_cycles, engine="tensor",
        ) as sp:
            divergences = cross_validate_bucket(
                scenarios, mode, stats=stats, tracer=tracer,
                engine_backend=engine_backend,
            )
            # Fast-forward attribution: bulk-skipped idle cycles are a
            # pure function of the workload, so they are canonical tags.
            sp.tag(
                cycles=stats.get("cycles", 0),
                fast_forwarded=stats.get("fast_forwarded", 0),
            )
    registry = MetricsRegistry()
    registry.counter(
        "differential_bucket_scenarios_total",
        "scenarios validated through the tensorized bucket path",
    ).inc(len(scenarios))
    registry.counter(
        "differential_bucket_cycles_total",
        "scenario-cycles advanced by bucketed campaign evaluations",
    ).inc(stats.get("cycles", 0))
    registry.counter(
        "differential_fast_forwarded_cycles_total",
        "idle decision cycles skipped in bulk by the campaign engine",
    ).inc(stats.get("fast_forwarded", 0))
    return BucketOutcome(
        outcomes=tuple(
            _seed_outcome(scenario, divergence)
            for scenario, divergence in zip(scenarios, divergences)
        ),
        telemetry=registry.snapshot(),
    )


def _scenario_cache_payload(
    seed: int, n_cycles: int, mode: str, engine: str = "batch",
    engine_backend: str = "numpy",
) -> dict:
    """Canonical cache-key payload: the *resolved* scenario config.

    Keyed on the full derived scenario (not just the seed) plus the
    engine pair, comparison mode and array backend, so a generator
    change that alters what a seed means invalidates its cache entry —
    and tensor-path results never collide with cached sequential-path
    entries, nor one backend's passes with another's.  That includes
    the ``numba`` backend: even though its fused kernels are proven
    byte-identical to the NumPy path, a cached pass records *which*
    code path validated the scenario, so compiled-kernel runs key
    separately rather than satisfying (or being satisfied by)
    NumPy-path lookups.  The package-version/schema token is folded in
    by :class:`~repro.runner.cache.ResultCache`.
    """
    scenario = generate_scenario(seed, n_cycles=n_cycles)
    return {
        "mode": mode,
        "engines": ["reference", engine],
        "engine_backend": engine_backend,
        "scenario": {
            "seed": scenario.seed,
            "n_slots": scenario.n_slots,
            "routing": scenario.routing.value,
            "block_mode": scenario.block_mode.value,
            "schedule": scenario.schedule,
            "wrap": scenario.wrap,
            "extended": scenario.extended,
            "n_cycles": scenario.n_cycles,
            "consume": scenario.consume,
            "count_misses": scenario.count_misses,
            "drop_late_prob": scenario.drop_late_prob,
            "arrival_prob": scenario.arrival_prob,
            "max_deadline_offset": scenario.max_deadline_offset,
            "streams": [
                {
                    "sid": s.sid,
                    "period": s.period,
                    "loss_numerator": s.loss_numerator,
                    "loss_denominator": s.loss_denominator,
                    "initial_deadline": s.initial_deadline,
                    "mode": s.mode.value,
                    "extended": s.extended,
                }
                for s in scenario.streams
            ],
        },
    }


def _encode_outcome(outcome: SeedOutcome) -> dict:
    """JSON cache value for a *passing* seed."""
    return {
        "seed": outcome.seed,
        "routing": outcome.routing,
        "block_mode": outcome.block_mode,
        "modes": list(outcome.modes),
    }


def _decode_outcome(value: dict) -> SeedOutcome:
    return SeedOutcome(
        seed=int(value["seed"]),
        routing=str(value["routing"]),
        block_mode=str(value["block_mode"]),
        modes=tuple(str(m) for m in value["modes"]),
    )


@dataclass(slots=True)
class CampaignResult:
    """Summary of a differential campaign."""

    scenarios: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    routings: set = field(default_factory=set)
    block_modes: set = field(default_factory=set)
    modes: set = field(default_factory=set)
    mode: str = "outcome"
    n_cycles: int = 1000
    #: Shard/item failures (:class:`repro.runner.ShardFailure`): seeds
    #: that *died* (as opposed to diverging) without sinking the run.
    failures: list = field(default_factory=list)
    #: Seeds served from the on-disk scenario cache / actually executed.
    cached: int = 0
    executed: int = 0
    workers: int = 1
    #: Fast engine the campaign validated ("batch" or "tensor").
    engine: str = "batch"
    #: Merged per-bucket telemetry (tensor path only).  Execution
    #: detail — like ``workers``/``cached`` it never enters
    #: :meth:`summary`, keeping summaries byte-identical across
    #: engines and worker counts.
    telemetry: dict | None = None

    @property
    def passed(self) -> bool:
        return not self.divergences and not self.failures

    def summary(self) -> dict:
        """Canonical merged summary (worker-count independent).

        Contains only workload-derived facts — never execution details
        like worker count or cache hits — so the ``--workers 4`` and
        ``--workers 1`` runs of the same campaign serialize to
        byte-identical JSON.
        """
        return {
            "mode": self.mode,
            "n_cycles": self.n_cycles,
            "scenarios": self.scenarios,
            "passed": self.passed,
            "coverage": {
                "routings": sorted(r.value for r in self.routings),
                "block_modes": sorted(m.value for m in self.block_modes),
                "modes": sorted(m.value for m in self.modes),
            },
            "divergences": [
                {
                    "seed": d.scenario.seed,
                    "cycle": d.cycle,
                    "field": d.field,
                    "detail": str(d),
                }
                for d in self.divergences
            ],
            "failures": [
                {
                    "shard": f.shard,
                    "seeds": list(f.items),
                    "error": (
                        f.error.strip().splitlines()[-1]
                        if f.error.strip()
                        else ""
                    ),
                }
                for f in self.failures
            ],
        }

    def summary_json(self) -> str:
        """The :meth:`summary` as canonical JSON text."""
        return json.dumps(self.summary(), sort_keys=True, indent=1) + "\n"


def _fold_outcome(result: CampaignResult, outcome: SeedOutcome) -> None:
    result.scenarios += 1
    result.routings.add(Routing(outcome.routing))
    result.block_modes.add(BlockMode(outcome.block_mode))
    result.modes.update(SchedulingMode(m) for m in outcome.modes)
    if outcome.divergence is not None:
        result.divergences.append(outcome.divergence)


def _tensor_campaign(
    seeds,
    result: CampaignResult,
    n_cycles: int,
    mode: str,
    workers,
    cache_dir,
    use_cache: bool,
    tracer: SpanTracer | None = None,
    engine_backend: str = "numpy",
) -> CampaignResult:
    """Bucketed tensor-engine campaign body (see :func:`campaign`).

    Seeds are first resolved against the per-seed scenario cache (the
    tensor path has its own namespace so entries never collide with the
    sequential path), the misses are bucketed by
    :func:`bucket_key` in first-seen order, and the buckets shard
    across workers as whole units.  Outcomes fold back in original seed
    order, so the merged summary stays byte-identical to the
    sequential batch-engine campaign; per-bucket telemetry merges into
    ``result.telemetry``.
    """
    from dataclasses import replace

    from repro.observability.metrics import merge_snapshots
    from repro.runner import ResultCache, run_sharded

    cache = None
    if cache_dir is not None and use_cache:
        cache = ResultCache(cache_dir, namespace=f"differential-{mode}-tensor")

    def payload_key(seed: int) -> str:
        return cache.key(
            _scenario_cache_payload(
                seed, n_cycles, mode, engine="tensor",
                engine_backend=engine_backend,
            )
        )

    def prepass() -> list[tuple[int, ...]]:
        """Resolve cache hits, bucket the misses by shape (first-seen
        order), mutating ``outcomes``/``pending``/``result.cached``."""
        for seed in seeds:
            if cache is not None:
                hit, value = cache.get(payload_key(seed))
                if hit:
                    outcomes[seed] = _decode_outcome(value)
                    result.cached += 1
                    continue
            pending.append(seed)
        buckets: dict[tuple, list[int]] = {}
        for seed in pending:
            key = bucket_key(generate_scenario(seed, n_cycles=n_cycles))
            buckets.setdefault(key, []).append(seed)
        return [tuple(bucket) for bucket in buckets.values()]

    outcomes: dict[int, SeedOutcome] = {}
    pending: list[int] = []
    if tracer is None:
        items = prepass()
    else:
        with tracer.span("bucket_prepass", kind="prepass") as prep:
            items = prepass()
            prep.tag(
                seeds=len(seeds),
                cached=result.cached,
                pending=len(pending),
                buckets=len(items),
            )

    pool = run_sharded(
        validate_bucket,
        items,
        workers=workers,
        task_args=(n_cycles, mode, engine_backend),
        tracer=tracer,
        span_name="bucket",
        span_kind="bucket",
    )
    snapshots = []
    for bucket_outcome in pool.results:
        if bucket_outcome is None:
            continue
        snapshots.append(bucket_outcome.telemetry)
        for outcome in bucket_outcome.outcomes:
            outcomes[outcome.seed] = outcome
            result.executed += 1
            if cache is not None and outcome.divergence is None:
                cache.put(payload_key(outcome.seed), _encode_outcome(outcome))
    # A dead shard loses whole buckets; report the seeds, not the
    # bucket tuples, so summaries match the per-seed path's shape.
    result.failures = [
        replace(
            failure,
            items=tuple(
                seed for bucket in failure.items for seed in bucket
            ),
        )
        for failure in pool.failures
    ]
    for seed in seeds:
        if seed in outcomes:
            _fold_outcome(result, outcomes[seed])
    result.workers = pool.workers
    result.telemetry = merge_snapshots(snapshots) if snapshots else None
    return result


def campaign(
    seeds,
    *,
    n_cycles: int = 1000,
    stop_on_divergence: bool = False,
    mode: str = "outcome",
    engine: str = "batch",
    workers: int | None = 1,
    cache_dir=None,
    use_cache: bool = True,
    tracer: SpanTracer | None = None,
    engine_backend: str = "numpy",
    _task=None,
) -> CampaignResult:
    """Cross-validate one scenario per seed; aggregate coverage + failures.

    ``mode="outcome"`` compares per-cycle :class:`CycleRecord` streams
    and final counters (the original harness);
    ``mode="trace"`` compares the engines' structured telemetry event
    streams (:func:`cross_validate_traces`).

    ``engine`` selects the fast path under test: ``"batch"`` (default)
    validates seeds one at a time; ``"tensor"`` buckets the campaign by
    architecture shape and runs each bucket as one tensorized
    ``(S, N)`` evaluation (:func:`validate_bucket`), sharding whole
    buckets across workers.  Both produce byte-identical merged
    summaries when every seed passes.

    ``engine_backend`` selects the tensor engine's array namespace
    (:mod:`repro.core.backend`: ``numpy``/``torch``/``cupy``/
    ``array_api_strict``); every backend must reproduce the NumPy
    reference byte-for-byte, so a passing campaign is the portability
    proof for that backend.  Non-tensor engines reject any value other
    than ``"numpy"``.

    ``workers`` shards the workload across processes
    (:func:`repro.runner.run_sharded`; ``0``/``None`` = all cores) —
    outcomes fold into the result in input order regardless of worker
    count, so the merged summary is byte-identical to a sequential
    run.  ``cache_dir`` enables the on-disk scenario cache (divergent
    seeds are never cached and always revalidate; the tensor path uses
    its own namespace so entries never collide); ``use_cache=False``
    keeps the directory untouched.  ``stop_on_divergence`` forces the
    sequential path (early exit is inherently order-dependent).

    A seed whose worker *dies* (hard crash, lost shard) is reported in
    ``result.failures`` with its shard's seed list rather than sinking
    the whole campaign; ``result.passed`` is then ``False``.

    ``tracer`` (a :class:`~repro.observability.spans.SpanTracer`) records
    the campaign as a hierarchical span tree — campaign → bucket
    pre-pass → per-seed/per-bucket item spans (with cache hit/miss tags)
    → engine runs → engine phases — propagated through the worker pool
    and merged index-ordered, so the canonical tree is byte-identical
    for any worker count.
    """
    if mode not in ("outcome", "trace"):
        raise ValueError(f"unknown campaign mode {mode!r}")
    if engine not in ("batch", "tensor"):
        raise ValueError(f"unknown campaign engine {engine!r}")
    if engine != "tensor" and engine_backend != "numpy":
        raise ValueError(
            f"engine_backend={engine_backend!r} requires engine='tensor'"
        )
    seeds = list(seeds)
    if tracer is not None:
        with tracer.span(
            "campaign", kind="campaign",
            mode=mode, engine=engine, n_cycles=n_cycles, seeds=len(seeds),
        ), activate_tracer(tracer):
            return _campaign_body(
                seeds, n_cycles, stop_on_divergence, mode, engine,
                workers, cache_dir, use_cache, tracer, engine_backend, _task,
            )
    return _campaign_body(
        seeds, n_cycles, stop_on_divergence, mode, engine,
        workers, cache_dir, use_cache, None, engine_backend, _task,
    )


def _campaign_body(
    seeds: list,
    n_cycles: int,
    stop_on_divergence: bool,
    mode: str,
    engine: str,
    workers,
    cache_dir,
    use_cache: bool,
    tracer: SpanTracer | None,
    engine_backend: str,
    _task,
) -> CampaignResult:
    result = CampaignResult(mode=mode, n_cycles=n_cycles, engine=engine)
    if stop_on_divergence:
        for seed in seeds:
            outcome = validate_seed(seed, n_cycles, mode, engine, engine_backend)
            _fold_outcome(result, outcome)
            result.executed += 1
            if outcome.divergence is not None:
                break
        return result
    if engine == "tensor" and _task is None:
        return _tensor_campaign(
            seeds, result, n_cycles, mode, workers, cache_dir, use_cache,
            tracer, engine_backend,
        )

    from repro.runner import ResultCache, run_sharded

    cache = None
    if cache_dir is not None and use_cache:
        cache = ResultCache(cache_dir, namespace=f"differential-{mode}")
    pool = run_sharded(
        _task if _task is not None else validate_seed,
        seeds,
        workers=workers,
        task_args=(n_cycles, mode),
        cache=cache,
        cache_key=(
            (lambda seed: _scenario_cache_payload(seed, n_cycles, mode))
            if cache is not None
            else None
        ),
        cache_encode=_encode_outcome,
        cache_decode=_decode_outcome,
        cache_if=lambda seed, outcome: outcome.divergence is None,
        tracer=tracer,
        span_name="seed",
        span_kind="seed",
    )
    for outcome in pool.results:
        if outcome is not None:
            _fold_outcome(result, outcome)
    result.failures = list(pool.failures)
    result.cached = pool.cached
    result.executed = pool.executed
    result.workers = pool.workers
    return result


@dataclass
class RankValidation:
    """Outcome of a three-way rank-function validation campaign."""

    name: str
    scenarios: int = 0
    n_cycles: int = 0
    n_slots: int = 0
    equivalent_to: str | None = None
    services: int = 0
    divergences: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.divergences

    def summary(self) -> dict:
        return {
            "format": 1,
            "kind": "rank-function-validation",
            "discipline": f"pifo:{self.name}",
            "scenarios": self.scenarios,
            "n_cycles": self.n_cycles,
            "n_slots": self.n_slots,
            "equivalent_to": self.equivalent_to,
            "services": self.services,
            "passed": self.passed,
            "divergences": list(self.divergences),
        }

    def summary_json(self) -> str:
        return json.dumps(self.summary(), sort_keys=True, indent=1) + "\n"


def _software_service_order(fn, scenario) -> list[tuple[int, int]]:
    """Replay a PIFO workload through the handwritten counterpart.

    Returns the ``(sid, seq)`` service order of
    ``registry.create(fn.equivalent_to)`` under the same arrivals: one
    batch of enqueues then at most one dequeue per cycle, followed by a
    work-conserving drain — the exact regime the engine frontends run.
    """
    from repro.disciplines import registry
    from repro.disciplines.base import Packet, SwStream

    discipline = registry.create(fn.equivalent_to)
    for stream in scenario.streams:
        discipline.add_stream(
            SwStream(
                stream_id=stream.sid,
                weight=stream.weight,
                priority=stream.priority,
            )
        )
    order: list[tuple[int, int]] = []
    enqueued = 0
    now = 0
    for now, cycle in enumerate(scenario.arrivals):
        for sid, seq, deadline, length in cycle:
            discipline.enqueue(
                Packet(
                    stream_id=sid,
                    seq=seq,
                    arrival=seq,
                    length=length,
                    deadline=deadline,
                )
            )
            enqueued += 1
        packet = discipline.dequeue(now)
        if packet is not None:
            order.append((packet.stream_id, packet.seq))
    now = scenario.n_cycles
    while len(order) < enqueued:
        packet = discipline.dequeue(now)
        if packet is None:
            raise AssertionError(
                f"{discipline.name} stalled with backlog during drain"
            )
        order.append((packet.stream_id, packet.seq))
        now += 1
    return order


def validate_rank_function(
    fn,
    seeds=range(20),
    *,
    n_cycles: int = 200,
    n_slots: int = 8,
    check_equivalent: bool = True,
) -> RankValidation:
    """Three-way cross-validation of one PIFO rank function.

    For every seed the same workload
    (:func:`repro.disciplines.pifo.generate_pifo_scenario`) runs
    through the interpreted reference frontend, the vectorized batch
    frontend and one tensorized campaign covering *all* the seeds at
    once; the canonical run summaries must be byte-identical across
    the three.  When the rank function declares ``equivalent_to``, the
    handwritten discipline replays the same arrivals and its service
    order must match packet-for-packet.

    ``fn`` is a :class:`~repro.disciplines.pifo.RankFunction` or a
    registered name.  This is the public entry point any user-defined
    rank function gets for free::

        from repro.core.differential import validate_rank_function
        result = validate_rank_function(my_rank_fn)
        assert result.passed, "\\n".join(result.divergences)
    """
    from repro.disciplines.pifo import (
        generate_pifo_scenario,
        rank_function,
        run_pifo,
        run_pifo_bucket,
    )

    if isinstance(fn, str):
        fn = rank_function(fn.removeprefix("pifo:"))
    seeds = list(seeds)
    scenarios = [
        generate_pifo_scenario(seed, n_slots=n_slots, n_cycles=n_cycles)
        for seed in seeds
    ]
    result = RankValidation(
        name=fn.name,
        scenarios=len(scenarios),
        n_cycles=n_cycles,
        n_slots=n_slots,
        equivalent_to=fn.equivalent_to,
    )
    tensor_summaries = run_pifo_bucket(fn, scenarios)
    for scenario, tensor_summary in zip(scenarios, tensor_summaries):
        reference = run_pifo(fn, scenario, engine="reference")
        batch = run_pifo(fn, scenario, engine="batch")
        blobs = {
            engine: json.dumps(summary, sort_keys=True, indent=1) + "\n"
            for engine, summary in (
                ("reference", reference),
                ("batch", batch),
                ("tensor", tensor_summary),
            )
        }
        if len(set(blobs.values())) != 1:
            pairs = [
                f"{a} != {b}"
                for a, b in (("reference", "batch"), ("reference", "tensor"))
                if blobs[a] != blobs[b]
            ]
            result.divergences.append(
                f"pifo:{fn.name} seed={scenario.seed}: "
                f"engine summaries differ ({', '.join(pairs)})"
            )
            continue
        result.services += len(reference["services"])
        if check_equivalent and fn.equivalent_to is not None:
            engine_order = [
                (sid, seq) for _t, sid, seq, _rank in reference["services"]
            ]
            software_order = _software_service_order(fn, scenario)
            if engine_order != software_order:
                first = next(
                    (
                        i
                        for i, (a, b) in enumerate(
                            zip(engine_order, software_order)
                        )
                        if a != b
                    ),
                    min(len(engine_order), len(software_order)),
                )
                result.divergences.append(
                    f"pifo:{fn.name} seed={scenario.seed}: diverges from "
                    f"handwritten {fn.equivalent_to!r} at service {first} "
                    f"(engine={engine_order[first:first + 3]} "
                    f"software={software_order[first:first + 3]})"
                )
    return result


# ----------------------------------------------------------------------
# aggregation-tier validation
# ----------------------------------------------------------------------


@dataclass
class AggregationValidation:
    """Outcome of a three-way aggregation-tier validation campaign."""

    discipline: str
    n_aggregates: int = 0
    scenarios: int = 0
    n_cycles: int = 0
    streams: int = 0
    services: int = 0
    divergences: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.divergences

    def summary(self) -> dict:
        return {
            "format": 1,
            "kind": "aggregation-validation",
            "discipline": self.discipline,
            "n_aggregates": self.n_aggregates,
            "scenarios": self.scenarios,
            "n_cycles": self.n_cycles,
            "streams": self.streams,
            "services": self.services,
            "passed": self.passed,
            "divergences": list(self.divergences),
        }

    def summary_json(self) -> str:
        return json.dumps(self.summary(), sort_keys=True, indent=1) + "\n"


def validate_aggregation(
    seeds=range(10),
    *,
    n_streams: int = 48,
    n_aggregates: int = 8,
    n_cycles: int = 160,
    discipline: str = "pifo:sfq",
    salt: int = 0,
    cache=None,
) -> AggregationValidation:
    """Three-way cross-validation of the hierarchical aggregation tier.

    Every seed derives one churn workload
    (:func:`repro.aggregation.generate_aggregation_scenario` — stream
    joins/leaves interleaved with arrivals) and replays it through the
    standalone tier on the reference and batch engines plus one
    tensorized campaign covering *all* the seeds at once
    (:func:`repro.aggregation.run_aggregation_bucket`); the canonical
    summaries — membership rollups, per-aggregate service counts, the
    sha256 digest of the full service event stream — must be
    byte-identical across the three.

    ``cache`` is an optional :class:`repro.runner.ResultCache`;
    already-validated scenarios are keyed on the *aggregate topology*
    (scenario payload includes ``n_aggregates``/``salt``/``discipline``,
    namespace ``"aggregation"``) so cached non-aggregated campaign
    entries can never satisfy aggregated lookups.
    """
    from repro.aggregation import (
        generate_aggregation_scenario,
        run_aggregation,
        run_aggregation_bucket,
    )

    seeds = list(seeds)
    scenarios = [
        generate_aggregation_scenario(
            seed,
            n_streams=n_streams,
            n_aggregates=n_aggregates,
            n_cycles=n_cycles,
            discipline=discipline,
            salt=salt,
        )
        for seed in seeds
    ]
    result = AggregationValidation(
        discipline=discipline,
        n_aggregates=n_aggregates,
        scenarios=len(scenarios),
        n_cycles=n_cycles,
    )
    cached: dict[int, dict] = {}
    if cache is not None:
        for scenario in scenarios:
            hit, value = cache.get(cache.key(scenario.cache_payload()))
            if hit:
                cached[scenario.seed] = value
    live = [sc for sc in scenarios if sc.seed not in cached]
    tensor_by_seed = dict(cached)
    if live:
        for sc, summary in zip(live, run_aggregation_bucket(live)):
            tensor_by_seed[sc.seed] = summary
    for scenario in scenarios:
        tensor_summary = tensor_by_seed[scenario.seed]
        reference = run_aggregation(scenario, engine="reference")
        batch = run_aggregation(scenario, engine="batch")
        blobs = {
            engine: json.dumps(summary, sort_keys=True, indent=1) + "\n"
            for engine, summary in (
                ("reference", reference),
                ("batch", batch),
                ("tensor", tensor_summary),
            )
        }
        if len(set(blobs.values())) != 1:
            pairs = [
                f"{a} != {b}"
                for a, b in (("reference", "batch"), ("reference", "tensor"))
                if blobs[a] != blobs[b]
            ]
            result.divergences.append(
                f"aggregation seed={scenario.seed} "
                f"({discipline}, {n_aggregates} aggregates): "
                f"engine summaries differ ({', '.join(pairs)})"
            )
            continue
        result.streams += reference["streams_joined"]
        result.services += reference["serviced"]
        if cache is not None and scenario.seed not in cached:
            cache.put(
                cache.key(scenario.cache_payload()), tensor_summary
            )
    return result


def main(argv=None) -> int:  # pragma: no cover - CLI convenience
    import argparse
    import time

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=200)
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--cycles", type=int, default=1000)
    parser.add_argument(
        "--trace-equivalence",
        action="store_true",
        help="compare structured telemetry event streams instead of "
        "cycle outcomes (observability as a correctness oracle)",
    )
    parser.add_argument(
        "--engine",
        choices=("batch", "tensor"),
        default="batch",
        help="fast engine under test: per-seed batch validation or the "
        "bucketed scenario-tensorized campaign engine (identical "
        "merged summaries when every seed passes)",
    )
    parser.add_argument(
        "--engine-backend",
        choices=BACKENDS,
        default="numpy",
        help="array namespace for the tensor engine "
        "(repro.core.backend); requires --engine tensor for any "
        "value other than numpy",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to shard the campaign across "
        "(0 = all cores; merged summary is identical for any value)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="on-disk scenario cache: seeds whose canonical "
        "(scenario, engines, version) hash already validated are "
        "skipped on re-runs",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir (neither read nor write entries)",
    )
    parser.add_argument(
        "--summary-json",
        metavar="PATH",
        default=None,
        help="write the canonical merged campaign summary to PATH "
        "(byte-identical across --workers values)",
    )
    args = parser.parse_args(argv)
    mode = "trace" if args.trace_equivalence else "outcome"
    start = time.perf_counter()
    result = campaign(
        range(args.base_seed, args.base_seed + args.count),
        n_cycles=args.cycles,
        mode=mode,
        engine=args.engine,
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        engine_backend=args.engine_backend,
    )
    elapsed = time.perf_counter() - start
    print(
        f"{mode} mode ({args.engine} engine, "
        f"{args.engine_backend} backend): "
        f"{result.scenarios} scenarios, "
        f"{len(result.divergences)} divergences, "
        f"routings={sorted(r.value for r in result.routings)}, "
        f"block_modes={sorted(m.value for m in result.block_modes)}, "
        f"modes={sorted(m.value for m in result.modes)}"
    )
    print(
        f"executed {result.executed} seeds "
        f"({result.cached} cached) on {result.workers} worker(s) "
        f"in {elapsed:.2f}s"
    )
    for divergence in result.divergences:
        print(divergence)
    for failure in result.failures:
        print(f"FAILED {failure.describe()}")
    if args.summary_json:
        with open(args.summary_json, "w", encoding="utf-8") as fh:
            fh.write(result.summary_json())
        print(f"summary written to {args.summary_json}")
    return 0 if result.passed else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
