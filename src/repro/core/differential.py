"""Differential cross-validation of the batch engine against the oracle.

The object model (:class:`~repro.core.scheduler.ShareStreamsScheduler`)
is the trusted, cycle-level reconstruction of the hardware; the batch
engine (:class:`~repro.core.batch_engine.BatchScheduler`) is the fast
path.  This module runs *both* engines on the same seeded scenario and
asserts cycle-by-cycle identical behavior:

* the emitted block and circulated winner of every decision cycle,
* the serviced-packet stream (``(sid, deadline, arrival, length)``),
* per-cycle miss registrations and dropped packets,
* final per-slot performance counters (wins, serviced, misses,
  violations, window resets, loads).

Scenarios are generated from a single integer seed, so any divergence
is reproducible from the seed alone — the test harness prints it on
failure.  See ``docs/ENGINES.md`` for the oracle/fast-path contract.

A second mode turns the observability layer itself into a correctness
oracle: :func:`cross_validate_traces` attaches a structured
:class:`~repro.observability.TraceRecorder` to each engine and compares
the *telemetry event streams* event-by-event (and their canonical byte
serializations), so the hook wiring, the event flattening and the
scheduling behavior are all certified together.

Run a standalone campaign with::

    PYTHONPATH=src python -m repro.core.differential --count 200
    PYTHONPATH=src python -m repro.core.differential --count 60 --trace-equivalence
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.attributes import SchedulingMode, StreamConfig
from repro.core.batch_engine import BatchScheduler
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.observability.events import TraceRecorder

__all__ = [
    "Scenario",
    "CycleRecord",
    "EngineTrace",
    "Divergence",
    "generate_scenario",
    "build_engine",
    "run_engine",
    "cross_validate",
    "cross_validate_traces",
    "campaign",
]

#: Disciplines the scenario generator samples (≥ 2 required by the
#: acceptance criteria; we span four).
_MODES = (
    SchedulingMode.DWCS,
    SchedulingMode.EDF,
    SchedulingMode.STATIC_PRIORITY,
    SchedulingMode.FAIR_SHARE,
)

# Wrapped (16-bit) scenarios must respect the serial-arithmetic
# contract: live deadlines/arrivals stay within half the horizon
# (32768) of the current time.  Bounding the per-cycle deadline offset
# keeps every live value well inside it.
_MAX_DEADLINE_OFFSET = 2048


@dataclass(frozen=True, slots=True)
class Scenario:
    """One fully-specified differential scenario (derived from a seed)."""

    seed: int
    n_slots: int
    routing: Routing
    block_mode: BlockMode
    schedule: str
    wrap: bool
    extended: bool
    streams: tuple[StreamConfig, ...]
    n_cycles: int
    consume: str
    count_misses: bool
    drop_late_prob: float
    arrival_prob: float
    max_deadline_offset: int

    def describe(self) -> str:
        modes = sorted({s.mode.value for s in self.streams})
        return (
            f"seed={self.seed} n_slots={self.n_slots} "
            f"streams={len(self.streams)} routing={self.routing.value} "
            f"block_mode={self.block_mode.value} "
            f"schedule={self.schedule} wrap={self.wrap} "
            f"consume={self.consume} count_misses={self.count_misses} "
            f"cycles={self.n_cycles} modes={modes}"
        )


@dataclass(frozen=True, slots=True)
class CycleRecord:
    """Observable outcome of one decision cycle, engine-agnostic."""

    now: int
    block: tuple[int, ...]
    circulated: int | None
    serviced: tuple[tuple[int, int, int, int], ...]
    misses: tuple[int, ...]
    hw_cycles: int
    dropped: tuple[tuple[int, int, int], ...]


@dataclass(frozen=True, slots=True)
class EngineTrace:
    """Full observable trace of one engine over one scenario."""

    engine: str
    records: tuple[CycleRecord, ...]
    counters: dict[int, tuple[int, int, int, int, int, int]]


@dataclass(frozen=True, slots=True)
class Divergence:
    """First observed disagreement between the two engines."""

    scenario: Scenario
    cycle: int | None  # None: counter (end-of-run) divergence
    field: str
    reference: object
    batch: object

    def __str__(self) -> str:
        where = "final counters" if self.cycle is None else f"cycle {self.cycle}"
        return (
            f"engines diverged at {where} on {self.field}\n"
            f"  scenario: {self.scenario.describe()}\n"
            f"  reference: {self.reference!r}\n"
            f"  batch:     {self.batch!r}\n"
            f"reproduce with: cross_validate(generate_scenario("
            f"{self.scenario.seed}))"
        )


def generate_scenario(
    seed: int,
    *,
    n_cycles: int = 1000,
    max_slots: int = 64,
) -> Scenario:
    """Derive a randomized scenario deterministically from ``seed``.

    Samples both routings, both block modes, both sorting schedules,
    wrapped and ideal arithmetic, 1..``max_slots`` streams and all four
    update disciplines — the design space the acceptance criteria
    require the campaign to span.
    """
    rng = random.Random(seed ^ 0x5EED)
    slot_choices = [n for n in (2, 4, 8, 16, 32, 64) if n <= max_slots]
    n_slots = rng.choice(slot_choices)
    extended = n_slots > 32
    routing = rng.choice((Routing.BA, Routing.WR))
    block_mode = rng.choice((BlockMode.MAX_FIRST, BlockMode.MIN_FIRST))
    schedule = rng.choice(("paper", "bitonic"))
    wrap = rng.random() < 0.5
    n_streams = rng.randint(1, n_slots)
    sids = rng.sample(range(n_slots), n_streams)
    streams = []
    for sid in sids:
        mode = rng.choice(_MODES)
        y = rng.randint(0, 12)
        x = rng.randint(0, y) if y else 0
        streams.append(
            StreamConfig(
                sid=sid,
                period=rng.randint(1, 8),
                loss_numerator=x,
                loss_denominator=y,
                initial_deadline=rng.randint(0, 64),
                mode=mode,
                extended=extended,
            )
        )
    if routing is Routing.WR:
        consume = "winner"
    else:
        consume = rng.choice(("winner", "winner", "block", "none"))
    return Scenario(
        seed=seed,
        n_slots=n_slots,
        routing=routing,
        block_mode=block_mode,
        schedule=schedule,
        wrap=wrap,
        extended=extended,
        streams=tuple(streams),
        n_cycles=n_cycles,
        consume=consume,
        count_misses=rng.random() < 0.85,
        drop_late_prob=rng.choice((0.0, 0.0, 0.05, 0.2)),
        arrival_prob=rng.uniform(0.1, 0.9),
        max_deadline_offset=rng.randint(8, _MAX_DEADLINE_OFFSET),
    )


def build_engine(scenario: Scenario, engine: str, *, observer=None):
    """Instantiate one engine for ``scenario`` (``reference``/``batch``)."""
    config = ArchConfig(
        n_slots=scenario.n_slots,
        routing=scenario.routing,
        block_mode=scenario.block_mode,
        schedule=scenario.schedule,
        wrap=scenario.wrap,
        extended=scenario.extended,
    )
    if engine == "reference":
        return ShareStreamsScheduler(
            config, list(scenario.streams), observer=observer
        )
    if engine == "batch":
        return BatchScheduler(config, list(scenario.streams), observer=observer)
    raise ValueError(f"unknown engine {engine!r}")


def _arrival_schedule(scenario: Scenario):
    """Per-cycle arrival/drop decisions, derived from the seed alone.

    Generated once and replayed identically into both engines so the
    workloads are bit-identical.
    """
    rng = random.Random(scenario.seed ^ 0xA4414A1)
    schedule = []
    for t in range(scenario.n_cycles):
        arrivals = []
        for stream in scenario.streams:
            if rng.random() < scenario.arrival_prob:
                offset = rng.randint(0, scenario.max_deadline_offset)
                arrivals.append((stream.sid, t + offset, t))
        drop = rng.random() < scenario.drop_late_prob
        schedule.append((arrivals, drop))
    return schedule


def run_engine(scenario: Scenario, engine: str, *, observer=None) -> EngineTrace:
    """Execute ``scenario`` on one engine, recording every observable."""
    sched = build_engine(scenario, engine, observer=observer)
    records = []
    for t, (arrivals, drop) in enumerate(_arrival_schedule(scenario)):
        for sid, deadline, arrival in arrivals:
            sched.enqueue(sid, deadline, arrival)
        outcome = sched.decision_cycle(
            t,
            consume=scenario.consume,
            count_misses=scenario.count_misses,
            drop_late=drop,
        )
        records.append(
            CycleRecord(
                now=t,
                block=outcome.block,
                circulated=outcome.circulated_sid,
                serviced=tuple(
                    (sid, p.deadline, p.arrival, p.length)
                    for sid, p in outcome.serviced
                ),
                misses=outcome.misses,
                hw_cycles=outcome.hw_cycles,
                dropped=tuple(
                    (sid, p.deadline, p.arrival) for sid, p in outcome.dropped
                ),
            )
        )
    counters = {
        sid: (
            c.wins,
            c.serviced,
            c.missed_deadlines,
            c.violations,
            c.window_resets,
            c.loads,
        )
        for sid, c in sched.counters().items()
    }
    return EngineTrace(engine=engine, records=tuple(records), counters=counters)


_CYCLE_FIELDS = (
    "block",
    "circulated",
    "serviced",
    "misses",
    "hw_cycles",
    "dropped",
)


def cross_validate(scenario: Scenario) -> Divergence | None:
    """Run both engines on ``scenario``; return the first divergence.

    ``None`` means the engines agreed on every decision cycle and on
    the final performance counters.
    """
    ref = run_engine(scenario, "reference")
    bat = run_engine(scenario, "batch")
    for t, (r, b) in enumerate(zip(ref.records, bat.records)):
        if r != b:
            for name in _CYCLE_FIELDS:
                if getattr(r, name) != getattr(b, name):
                    return Divergence(
                        scenario, t, name, getattr(r, name), getattr(b, name)
                    )
    if ref.counters != bat.counters:
        return Divergence(scenario, None, "counters", ref.counters, bat.counters)
    return None


def cross_validate_traces(scenario: Scenario) -> Divergence | None:
    """Run both engines under telemetry; compare the trace streams.

    Attaches a fresh :class:`~repro.observability.TraceRecorder` to
    each engine and asserts the structured decision-trace event streams
    are identical event-by-event *and* byte-identical under canonical
    serialization — observability as a correctness oracle.  ``None``
    means no divergence.
    """
    ref_rec = TraceRecorder()
    bat_rec = TraceRecorder()
    run_engine(scenario, "reference", observer=ref_rec)
    run_engine(scenario, "batch", observer=bat_rec)
    ref_events = ref_rec.events()
    bat_events = bat_rec.events()
    for i, (r, b) in enumerate(zip(ref_events, bat_events)):
        if r != b:
            return Divergence(scenario, i, "trace_event", r, b)
    if len(ref_events) != len(bat_events):
        return Divergence(
            scenario, None, "trace_length", len(ref_events), len(bat_events)
        )
    # Event equality implies serialization equality; assert it anyway so
    # the canonical byte format itself stays deterministic.
    if ref_rec.serialize() != bat_rec.serialize():
        return Divergence(
            scenario, None, "trace_serialization", "<bytes>", "<bytes>"
        )
    return None


@dataclass(slots=True)
class CampaignResult:
    """Summary of a differential campaign."""

    scenarios: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    routings: set = field(default_factory=set)
    block_modes: set = field(default_factory=set)
    modes: set = field(default_factory=set)

    @property
    def passed(self) -> bool:
        return not self.divergences


def campaign(
    seeds,
    *,
    n_cycles: int = 1000,
    stop_on_divergence: bool = False,
    mode: str = "outcome",
) -> CampaignResult:
    """Cross-validate one scenario per seed; aggregate coverage + failures.

    ``mode="outcome"`` compares per-cycle :class:`CycleRecord` streams
    and final counters (the original harness);
    ``mode="trace"`` compares the engines' structured telemetry event
    streams (:func:`cross_validate_traces`).
    """
    if mode not in ("outcome", "trace"):
        raise ValueError(f"unknown campaign mode {mode!r}")
    validate = cross_validate if mode == "outcome" else cross_validate_traces
    result = CampaignResult()
    for seed in seeds:
        scenario = generate_scenario(seed, n_cycles=n_cycles)
        result.scenarios += 1
        result.routings.add(scenario.routing)
        result.block_modes.add(scenario.block_mode)
        result.modes.update(s.mode for s in scenario.streams)
        divergence = validate(scenario)
        if divergence is not None:
            result.divergences.append(divergence)
            if stop_on_divergence:
                break
    return result


def main(argv=None) -> int:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=200)
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--cycles", type=int, default=1000)
    parser.add_argument(
        "--trace-equivalence",
        action="store_true",
        help="compare structured telemetry event streams instead of "
        "cycle outcomes (observability as a correctness oracle)",
    )
    args = parser.parse_args(argv)
    result = campaign(
        range(args.base_seed, args.base_seed + args.count),
        n_cycles=args.cycles,
        mode="trace" if args.trace_equivalence else "outcome",
    )
    print(
        f"{'trace' if args.trace_equivalence else 'outcome'} mode: "
        f"{result.scenarios} scenarios, "
        f"{len(result.divergences)} divergences, "
        f"routings={sorted(r.value for r in result.routings)}, "
        f"block_modes={sorted(m.value for m in result.block_modes)}, "
        f"modes={sorted(m.value for m in result.modes)}"
    )
    for divergence in result.divergences:
        print(divergence)
    return 1 if result.divergences else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
