"""Fused nopython kernels: the compiled fast path of the tensor engine.

The ``(S, N)`` campaign engine (:mod:`repro.core.tensor_engine`) pays
interpreter and array-dispatch overhead on *every* decision cycle —
dozens of small array ops whose per-call cost dominates at small S×N,
exactly the regime the paper's single-cycle block decision targets and
the live-service open item in ROADMAP.md cares about.  This module
re-expresses the per-cycle phases as scalar loops that `numba`_ can
compile to native code with ``@njit(cache=True)``:

* :func:`rank_into` — the Table 2 packed-integer-key rank cascade
  (:func:`~repro.core.tensor_engine.table2_rank_order`) as one stable
  insertion sort per scenario row over the composite key
  ``(invalid, deadline, packed-window-constraint, arrival, sid)``,
  including the 16-bit wrap rebasing;
* :func:`emit_into` — the compare-exchange network replay over the
  precomputed per-position partner/direction vectors (bitonic) or the
  perfect-shuffle permutation (paper schedule);
* :func:`register_misses_into` — the DWCS miss/loss/window-reset
  scatter, mutating the live window counters in place;
* :func:`run_cycles` — the **whole-run compiled driver**: K periodic
  decision cycles (rank → winner/block selection → miss registration →
  DWCS window + EDF bias updates → idle fast-forward detection via
  :func:`_next_release`) without returning to Python, using scratch
  buffers allocated once up front (no per-cycle allocation) and writing
  each cycle's emitted decision into a preallocated ring
  (``ring[s, t] = circulated sid``) that the Python side drains for
  observability / ``collect_winners``.

Every kernel is also a *plain Python function*: when numba is absent
(or ``NUMBA_DISABLE_JIT=1``) the same code runs interpreted with
identical semantics, which is what the equivalence suite exercises on
hosts without the ``jit`` extra.  All state is int64/bool — no floats —
so compiled, interpreted and NumPy paths are byte-identical by
construction; :mod:`tests.test_jit_equivalence` asserts it.

First-call note: ``cache=True`` persists compiled machine code next to
the source (``__pycache__``), so the one-time compile cost (~seconds)
is paid once per interpreter/ABI, not once per process.

.. _numba: https://numba.pydata.org/
"""

from __future__ import annotations

import numpy as np

from repro.core.batch_engine import (
    _ARR_HALF,
    _ARR_MASK,
    _ARR_MOD,
    _DL_HALF,
    _DL_MASK,
    _DL_MOD,
    _Y_MAX,
)

__all__ = [
    "NUMBA_AVAILABLE",
    "njit",
    "rank_into",
    "emit_into",
    "register_misses_into",
    "run_cycles",
]

try:
    from numba import njit

    NUMBA_AVAILABLE = True  # pragma: no cover - needs the jit extra
except ImportError:
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """Identity stand-in for ``numba.njit`` when numba is absent.

        The kernels below then run as ordinary Python functions with
        identical semantics (the same behavior numba's
        ``NUMBA_DISABLE_JIT=1`` debugging switch produces), so the
        equivalence suite can exercise them on any host.
        """
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


#: int64 sentinel beyond any release boundary (idle fast-forward scan).
_FAR_FUTURE = 2**62


@njit(cache=True)
def _packed_key(xv, yv):
    """One int64 word ordering like the (ratio, den, num) key triple.

    Mirrors :func:`~repro.core.tensor_engine.table2_rank_order`:
    zero-wildcard slots (``x == 0 or y == 0``) carry ``wc_key = 0``,
    ``den_key = 255 - y``, ``num_key = 0``; live-ratio slots carry the
    order-exact fixed-point ratio ``(x << 16) // y``, ``den_key = 255``
    and ``num_key = x``.
    """
    if xv == 0 or yv == 0:
        return (255 - yv) << 8
    return (((xv << 16) // yv) << 16) | (255 << 8) | xv


@njit(cache=True)
def _key_gt(a, b, k_inv, k_dl, k_pk, k_arr):
    """Strict lexicographic greater-than over the rank key cascade.

    Key significance (most to least): invalid, deadline, packed window
    constraint, arrival.  The final ``sid`` tie-break is implicit: the
    stable insertion sort only displaces on *strictly* greater, so
    equal composite keys keep ascending slot order.
    """
    if k_inv[a] != k_inv[b]:
        return k_inv[a] > k_inv[b]
    if k_dl[a] != k_dl[b]:
        return k_dl[a] > k_dl[b]
    if k_pk[a] != k_pk[b]:
        return k_pk[a] > k_pk[b]
    return k_arr[a] > k_arr[b]


@njit(cache=True)
def _sort_row(n, order, k_inv, k_dl, k_pk, k_arr):
    """Stable insertion sort of slot indices by the composite key."""
    for i in range(n):
        order[i] = i
    for i in range(1, n):
        cur = order[i]
        j = i - 1
        while j >= 0 and _key_gt(order[j], cur, k_inv, k_dl, k_pk, k_arr):
            order[j + 1] = order[j]
            j -= 1
        order[j + 1] = cur


@njit(cache=True)
def _fill_keys(
    n, valid, attr_dl, attr_arr, x, y, now, wrap, deadline_only,
    k_inv, k_dl, k_pk, k_arr,
):
    """Materialize one scenario row's rank keys (with wrap rebasing)."""
    for i in range(n):
        k_inv[i] = 0 if valid[i] else 1
        dl = attr_dl[i]
        arr = attr_arr[i]
        if wrap:
            dl = (dl - now) & _DL_MASK
            if dl >= _DL_HALF:
                dl -= _DL_MOD
            arr = (arr - now) & _ARR_MASK
            if arr >= _ARR_HALF:
                arr -= _ARR_MOD
        k_dl[i] = dl
        k_arr[i] = arr
        k_pk[i] = 0 if deadline_only else _packed_key(x[i], y[i])


@njit(cache=True)
def rank_into(
    order, valid, attr_dl, attr_arr, x, y, now, wrap, deadline_only
):
    """Fused Table 2 rank cascade: fill ``order`` (S, N) per scenario.

    Permutation-identical to
    :func:`~repro.core.tensor_engine.table2_rank_order` fed the same
    rebased keys — the sort is stable and the key cascade identical, so
    the total (sid-tie-broken) order matches the NumPy path exactly.
    """
    s_count, n = order.shape
    k_inv = np.empty(n, np.int64)
    k_dl = np.empty(n, np.int64)
    k_pk = np.empty(n, np.int64)
    k_arr = np.empty(n, np.int64)
    for s in range(s_count):
        _fill_keys(
            n, valid[s], attr_dl[s], attr_arr[s], x[s], y[s],
            now, wrap, deadline_only, k_inv, k_dl, k_pk, k_arr,
        )
        _sort_row(n, order[s], k_inv, k_dl, k_pk, k_arr)


@njit(cache=True)
def _replay_row(
    state, rank, tmp, n, bitonic, partner_all, gt_all, shuffle, log2n
):
    """Advance one scenario's network state through every pass."""
    if bitonic:
        for p in range(partner_all.shape[0]):
            for j in range(n):
                ss = state[j]
                sp = state[partner_all[p, j]]
                if gt_all[p, j]:
                    tmp[j] = sp if rank[ss] > rank[sp] else ss
                else:
                    tmp[j] = sp if rank[ss] < rank[sp] else ss
            for j in range(n):
                state[j] = tmp[j]
    else:
        for _ in range(log2n):
            for j in range(n):
                tmp[j] = state[shuffle[j]]
            for p in range(n // 2):
                a = tmp[2 * p]
                b = tmp[2 * p + 1]
                if rank[a] > rank[b]:
                    state[2 * p] = b
                    state[2 * p + 1] = a
                else:
                    state[2 * p] = a
                    state[2 * p + 1] = b


@njit(cache=True)
def emit_into(state, order, partner_all, gt_all, shuffle, log2n, bitonic):
    """Fused compare-exchange network replay into ``state`` (S, N).

    Identical to
    :meth:`~repro.core.tensor_engine.CampaignEngine._emit_positions`:
    bitonic passes replay through the precomputed per-position
    partner/direction vectors; the paper schedule replays ``log2(N)``
    perfect-shuffle + pairwise-exchange rounds.
    """
    s_count, n = order.shape
    rank = np.empty(n, np.int64)
    tmp = np.empty(n, np.int64)
    for s in range(s_count):
        for pos in range(n):
            rank[order[s, pos]] = pos
        for j in range(n):
            state[s, j] = j
        _replay_row(
            state[s], rank, tmp, n, bitonic,
            partner_all, gt_all, shuffle, log2n,
        )


@njit(cache=True)
def register_misses_into(
    late, dwcs_like, x, y, cfg_x, cfg_y, missed, violations, window_resets
):
    """Fused DWCS miss scatter: the loss-update path at ``late`` slots.

    In-place twin of
    :meth:`~repro.core.tensor_engine.CampaignEngine._register_misses`.
    """
    s_count, n = late.shape
    for s in range(s_count):
        for i in range(n):
            if not late[s, i]:
                continue
            missed[s, i] += 1
            if not dwcs_like[s, i]:
                continue
            if x[s, i] > 0:
                x[s, i] -= 1
                if y[s, i] > 0:
                    y[s, i] -= 1
                if y[s, i] == 0 or x[s, i] == y[s, i]:
                    x[s, i] = cfg_x[s, i]
                    y[s, i] = cfg_y[s, i]
                    window_resets[s, i] += 1
            else:
                violations[s, i] += 1
                nxt = y[s, i] + 1
                y[s, i] = nxt if nxt < _Y_MAX else _Y_MAX


@njit(cache=True)
def _win_update_at(s, i, x, y, cfg_x, cfg_y, window_resets):
    """Scalar DWCS win update (window decrement + reset check)."""
    if y[s, i] > 0:
        y[s, i] -= 1
    if y[s, i] == 0 or y[s, i] <= x[s, i]:
        x[s, i] = cfg_x[s, i]
        y[s, i] = cfg_y[s, i]
        window_resets[s, i] += 1


@njit(cache=True)
def _loss_update_at(s, i, x, y, cfg_x, cfg_y, violations, window_resets):
    """Scalar DWCS loss update (tolerance decrement or violation)."""
    if x[s, i] > 0:
        x[s, i] -= 1
        if y[s, i] > 0:
            y[s, i] -= 1
        if y[s, i] == 0 or x[s, i] == y[s, i]:
            x[s, i] = cfg_x[s, i]
            y[s, i] = cfg_y[s, i]
            window_resets[s, i] += 1
    else:
        violations[s, i] += 1
        nxt = y[s, i] + 1
        y[s, i] = nxt if nxt < _Y_MAX else _Y_MAX


@njit(cache=True)
def _next_release(loaded, consumed, strides, n_cycles, have_streams):
    """Idle fast-forward detection: the earliest pending release.

    The compiled twin of the NumPy path's
    ``min(where(loaded, avail, FAR_FUTURE))`` scan.
    """
    if not have_streams:
        return n_cycles
    s_count, n = loaded.shape
    nxt = _FAR_FUTURE
    for s in range(s_count):
        for i in range(n):
            if loaded[s, i]:
                a = consumed[s, i] * strides[s, i]
                if a < nxt:
                    nxt = a
    return nxt


@njit(cache=True)
def run_cycles(
    n_cycles,
    loaded,
    offs,
    steps,
    strides,
    dwcs_like,
    edf,
    x,
    y,
    cfg_x,
    cfg_y,
    edf_bias,
    wins,
    serviced,
    missed,
    violations,
    window_resets,
    deadline_only,
    winner_only,
    max_first,
    bitonic,
    partner_all,
    gt_all,
    shuffle,
    log2n,
    consume_block,
    count_misses,
    fast_forward,
    have_streams,
    ring,
    stats,
):
    """Whole-run compiled driver: K periodic decision cycles, no Python.

    The fused twin of
    :meth:`~repro.core.tensor_engine.CampaignEngine.run_periodic`'s
    cycle loop.  All ``(S, N)`` state/counter arrays are mutated in
    place; every emitted decision lands in the preallocated ring
    (``ring[s, t] = circulated sid``, rows stay ``-1`` on idle/sat-out
    cycles) when the ring has capacity; ``stats`` returns
    ``[non-fast-forwarded cycles, fast-forwarded cycles, ff gaps]`` so
    the caller can replay the lockstep control-unit accounting in bulk.

    Scratch buffers (consumed counts, validity masks, rank keys,
    network state) are allocated once before the loop — the loop body
    itself performs no allocation.
    """
    s_count, n = loaded.shape
    consumed = np.zeros((s_count, n), np.int64)
    valid = np.zeros((s_count, n), np.bool_)
    row_active = np.zeros(s_count, np.bool_)
    k_inv = np.empty(n, np.int64)
    k_dl = np.empty(n, np.int64)
    k_pk = np.empty(n, np.int64)
    k_arr = np.empty(n, np.int64)
    order = np.empty(n, np.int64)
    rank = np.empty(n, np.int64)
    state = np.empty(n, np.int64)
    tmp = np.empty(n, np.int64)
    late = np.zeros(n, np.bool_)
    collect = ring.shape[1] > 0
    nonff = 0
    ff_cycles = 0
    ff_gaps = 0
    t = 0
    while t < n_cycles:
        any_active = False
        for s in range(s_count):
            act = False
            for i in range(n):
                v = loaded[s, i] and consumed[s, i] * strides[s, i] <= t
                valid[s, i] = v
                act = act or v
            row_active[s] = act
            any_active = any_active or act
        if not any_active:
            if fast_forward:
                nxt = _next_release(
                    loaded, consumed, strides, n_cycles, have_streams
                )
                if nxt < t + 1:
                    nxt = t + 1
                if nxt > n_cycles:
                    nxt = n_cycles
                ff_cycles += nxt - t
                ff_gaps += 1
                t = nxt
            else:
                nonff += 1
                t += 1
            continue
        for s in range(s_count):
            if not row_active[s]:
                continue
            # SCHEDULE keys: attribute deadline = periodic release (+
            # EDF bias), arrival key = consumed count.  Computed before
            # miss registration, which mutates x/y below.
            for i in range(n):
                k_inv[i] = 0 if valid[s, i] else 1
                real_dl = offs[s, i] + consumed[s, i] * steps[s, i]
                adl = real_dl
                if edf[s, i]:
                    adl += edf_bias[s, i]
                k_dl[i] = adl
                k_arr[i] = consumed[s, i]
                k_pk[i] = (
                    0 if deadline_only else _packed_key(x[s, i], y[s, i])
                )
                late[i] = valid[s, i] and real_dl < t
            w = 0
            for i in range(1, n):
                if _key_gt(w, i, k_inv, k_dl, k_pk, k_arr):
                    w = i
            if winner_only or max_first:
                circulated = w
            else:
                # Block tail circulation: full sort + network replay,
                # then the last valid emitted position.
                _sort_row(n, order, k_inv, k_dl, k_pk, k_arr)
                for pos in range(n):
                    rank[order[pos]] = pos
                for j in range(n):
                    state[j] = j
                _replay_row(
                    state, rank, tmp, n, bitonic,
                    partner_all, gt_all, shuffle, log2n,
                )
                circulated = w
                for pos in range(n - 1, -1, -1):
                    if valid[s, state[pos]]:
                        circulated = state[pos]
                        break
            if count_misses:
                for i in range(n):
                    if late[i]:
                        missed[s, i] += 1
                        if dwcs_like[s, i]:
                            _loss_update_at(
                                s, i, x, y, cfg_x, cfg_y,
                                violations, window_resets,
                            )
            # PRIORITY_UPDATE: winner consume updates the circulated
            # slot; block consume services every valid head.
            if consume_block:
                if dwcs_like[s, w]:
                    _win_update_at(s, w, x, y, cfg_x, cfg_y, window_resets)
                if edf[s, w]:
                    edf_bias[s, w] += steps[s, w]
                for i in range(n):
                    if valid[s, i]:
                        serviced[s, i] += 1
                        consumed[s, i] += 1
            else:
                c = circulated
                late_c = late[c]
                if dwcs_like[s, c] and not late_c:
                    _win_update_at(s, c, x, y, cfg_x, cfg_y, window_resets)
                if not count_misses and dwcs_like[s, c] and late_c:
                    _loss_update_at(
                        s, c, x, y, cfg_x, cfg_y, violations, window_resets
                    )
                if edf[s, c] and (not count_misses or not late_c):
                    edf_bias[s, c] += steps[s, c]
                serviced[s, c] += 1
                consumed[s, c] += 1
            wins[s, circulated] += 1
            if collect:
                ring[s, t] = circulated
        nonff += 1
        t += 1
    stats[0] = nonff
    stats[1] = ff_cycles
    stats[2] = ff_gaps
