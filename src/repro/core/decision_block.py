"""Decision block: single-cycle, multi-attribute pairwise comparator.

A Decision block (Figure 5) receives two full attribute bundles and, in
one hardware cycle, concurrently evaluates every Table 2 ordering rule
and emits the bundles re-ordered: the higher-priority stream on the
*winner* port, the other on the *loser* port.

Two output configurations exist (Section 4.3, "Max-finding and Block
Decisions"):

* **Base architecture (BA)** — both winner *and* loser are driven to the
  next stage, so after the recirculation completes a whole sorted
  *block* of streams is available.
* **Winner-only routing (WR)** — only the winner port is driven; losers
  are dropped from the network, easing physical routing at the cost of
  obtaining just the single max-priority stream.

The block keeps per-rule fire counters so experiments can report which
ordering rules actually resolved decisions (the Table 2 coverage bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attributes import HardwareAttributes
from repro.core.rules import Rule, compare_with_rule

__all__ = ["DecisionResult", "DecisionBlock"]


@dataclass(frozen=True, slots=True)
class DecisionResult:
    """One single-cycle pairwise decision.

    ``winner`` is the higher-priority bundle, ``loser`` the other;
    ``rule`` records which Table 2 rule resolved the pair.
    """

    winner: HardwareAttributes
    loser: HardwareAttributes
    rule: Rule


@dataclass
class DecisionBlock:
    """One physical Decision block instance.

    Parameters
    ----------
    index:
        Position of the block in the single network stage
        (``0 .. N/2 - 1``).
    wrap:
        Use 16-bit serial deadline/arrival comparison (hardware
        behavior).  ``False`` selects ideal unbounded arithmetic.
    deadline_only:
        Simple-comparator configuration for fair-queuing service tags.
    """

    index: int = 0
    wrap: bool = True
    deadline_only: bool = False
    decisions: int = field(default=0, init=False)
    rule_counts: dict[Rule, int] = field(default_factory=dict, init=False)

    def decide(
        self, a: HardwareAttributes, b: HardwareAttributes
    ) -> DecisionResult:
        """Order a pair of attribute bundles in one cycle."""
        result, rule = compare_with_rule(
            a, b, wrap=self.wrap, deadline_only=self.deadline_only
        )
        self.decisions += 1
        self.rule_counts[rule] = self.rule_counts.get(rule, 0) + 1
        if result < 0:
            return DecisionResult(a, b, rule)
        return DecisionResult(b, a, rule)

    def reset_counters(self) -> None:
        """Clear the decision and per-rule fire counters."""
        self.decisions = 0
        self.rule_counts.clear()
