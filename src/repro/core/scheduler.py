"""Top-level ShareStreams scheduler: slots + network + control FSM.

:class:`ShareStreamsScheduler` is the cycle-level behavioral model of
the FPGA scheduler core: ``N`` Register Base blocks, ``N/2`` Decision
blocks in the recirculating shuffle-exchange network, and the Control &
Steering unit.  One call to :meth:`decision_cycle` performs exactly what
the hardware does in one SCHEDULE + PRIORITY_UPDATE pair:

1. drive every slot's attribute bundle onto the network and recirculate
   ``log2(N)`` passes (SCHEDULE);
2. register missed deadlines in the per-slot performance counters;
3. circulate the chosen stream ID back to the Register Base blocks and
   apply per-stream attribute adjustments (PRIORITY_UPDATE), consuming
   the serviced head packet(s).

The BA/WR routing choice, the block consumption policy and the
max-first/min-first circulation mode reproduce the design space
Section 5 evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import StreamConfig
from repro.core.config import ArchConfig, BlockMode, Routing
from repro.core.control import ControlUnit
from repro.core.register_block import PendingPacket, RegisterBaseBlock
from repro.core.shuffle import ShuffleExchangeNetwork
from repro.observability.hooks import resolve_observer

__all__ = ["DecisionOutcome", "ShareStreamsScheduler"]


@dataclass(frozen=True, slots=True)
class DecisionOutcome:
    """Result of one decision cycle.

    Attributes
    ----------
    now:
        Scheduler time at which the decision was made.
    block:
        Stream IDs in emitted priority order (position 0 = winner).
        Under WR routing this holds just the winner.
    circulated_sid:
        The ID circulated during PRIORITY_UPDATE (block head in
        max-first mode, block tail in min-first mode), or ``None`` when
        no slot held an eligible packet.
    serviced:
        ``(sid, packet)`` pairs consumed this cycle, in transmission
        order.
    misses:
        Stream IDs whose latched head was past its deadline this cycle
        (each also bumped its slot's missed-deadline counter).
    hw_cycles:
        Hardware cycles the decision consumed (SCHEDULE passes + the
        PRIORITY_UPDATE cycle).
    dropped:
        ``(sid, packet)`` pairs shed by the drop-late policy this cycle
        (empty unless ``drop_late`` was requested).
    """

    now: int
    block: tuple[int, ...]
    circulated_sid: int | None
    serviced: tuple[tuple[int, PendingPacket], ...]
    misses: tuple[int, ...]
    hw_cycles: int
    dropped: tuple[tuple[int, PendingPacket], ...] = ()

    @property
    def winner_sid(self) -> int | None:
        """Highest-priority stream this cycle (``None`` if all idle)."""
        return self.block[0] if self.block else None


class ShareStreamsScheduler:
    """Cycle-level behavioral model of the ShareStreams scheduler core.

    Parameters
    ----------
    config:
        Architecture configuration (slot count, routing, block mode...).
    streams:
        Stream service constraints to load; at most ``config.n_slots``.
        Further streams can be loaded later with :meth:`load_stream`.
    trace_timeline:
        Record the control FSM timeline (Figure 6).
    trace:
        Legacy :class:`repro.observability.TraceLog` receiving
        "decide" / "miss" / "drop" events per decision cycle.
    observer:
        Telemetry hook (:class:`repro.observability.DecisionObserver`,
        e.g. an :class:`repro.observability.Observability`) receiving
        every cycle's :class:`DecisionOutcome`.  ``None`` disables
        telemetry at the cost of one ``is not None`` test per cycle.
    """

    def __init__(
        self,
        config: ArchConfig,
        streams: list[StreamConfig] | None = None,
        *,
        trace_timeline: bool = False,
        trace=None,
        observer=None,
    ) -> None:
        self.config = config
        self.network = ShuffleExchangeNetwork(
            config.n_slots,
            wrap=config.wrap,
            deadline_only=config.deadline_only,
            schedule=config.schedule,
        )
        self.control = ControlUnit(trace=trace_timeline)
        #: Optional legacy :class:`repro.observability.TraceLog`.
        self.trace = trace
        #: Resolved telemetry hook (``None`` = telemetry disabled).
        self.observer = resolve_observer(trace, observer)
        self.slots: list[RegisterBaseBlock | None] = [None] * config.n_slots
        self._idle_bundles = self._make_idle_bundles()
        if streams:
            for stream in streams:
                self.load_stream(stream)
        # Power-on LOAD state (Figure 6 begins in LOAD).
        self.control.load(1, detail="power-on constraint load")

    # ------------------------------------------------------------------
    # slot management (LOAD path)
    # ------------------------------------------------------------------

    def _make_idle_bundles(self):
        """Invalid attribute bundles driven for unpopulated slots."""
        from repro.core.attributes import HardwareAttributes

        bundles = []
        for sid in range(self.config.n_slots):
            bundle = HardwareAttributes(sid=sid)
            bundle.valid = False
            bundles.append(bundle)
        return bundles

    def load_stream(self, stream: StreamConfig) -> RegisterBaseBlock:
        """Bind a stream's service constraints to its stream-slot."""
        if not 0 <= stream.sid < self.config.n_slots:
            raise ValueError(
                f"sid {stream.sid} out of range for "
                f"{self.config.n_slots}-slot scheduler"
            )
        if self.slots[stream.sid] is not None:
            raise ValueError(f"slot {stream.sid} already loaded")
        slot = RegisterBaseBlock(stream, wrap=self.config.wrap)
        self.slots[stream.sid] = slot
        return slot

    def slot(self, sid: int) -> RegisterBaseBlock:
        """The Register Base block bound to stream ``sid``."""
        block = self.slots[sid]
        if block is None:
            raise KeyError(f"no stream loaded in slot {sid}")
        return block

    @property
    def active_slots(self) -> list[RegisterBaseBlock]:
        """All populated stream-slots, in slot order."""
        return [s for s in self.slots if s is not None]

    def enqueue(
        self, sid: int, deadline: int, arrival: int, length: int = 1500
    ) -> None:
        """Deposit one packet request into a slot's pending queue.

        Models the streaming unit writing a 16-bit arrival-time offset
        into the slot's card-SRAM queue.
        """
        self.slot(sid).enqueue_request(deadline, arrival, length)

    # ------------------------------------------------------------------
    # decision cycle (SCHEDULE + PRIORITY_UPDATE)
    # ------------------------------------------------------------------

    def _gather_bundles(self):
        bundles = []
        for sid in range(self.config.n_slots):
            slot = self.slots[sid]
            if slot is None:
                bundles.append(self._idle_bundles[sid])
            else:
                bundles.append(slot.snapshot())
        return bundles

    def decision_cycle(
        self,
        now: int,
        *,
        consume: str = "winner",
        count_misses: bool = True,
        drop_late: bool = False,
    ) -> DecisionOutcome:
        """Run one full decision cycle at scheduler time ``now``.

        Parameters
        ----------
        now:
            Current time in scheduler units (packet-times).
        consume:
            ``"winner"`` — only the winner's head packet is consumed
            (max-finding operation and the usual per-packet service);
            ``"block"`` — every valid stream in the emitted block is
            consumed in block order (the single-transaction block
            transmission of Section 5.1);
            ``"none"`` — pure ordering, nothing consumed (used when an
            external transmission engine decides what to take).
        count_misses:
            Register missed deadlines in slot counters this cycle.
        drop_late:
            Shed late head packets *before* scheduling (the packet
            discard flags of Section 2's state storage: loss-tolerant
            streams drop expired packets instead of sending them late).
            Each drop registers a miss when ``count_misses`` is on.
        """
        if consume not in ("winner", "block", "none"):
            raise ValueError(f"unknown consume policy {consume!r}")

        dropped: list[tuple[int, PendingPacket]] = []
        if drop_late:
            for slot in self.active_slots:
                while True:
                    if count_misses and slot.head_is_late(now):
                        slot.record_miss(now)
                    packet = slot.drop_late_head(now)
                    if packet is None:
                        break
                    dropped.append((slot.config.sid, packet))

        # SCHEDULE: recirculate the attribute bundles.
        result = self.network.run(
            self._gather_bundles(), winner_only=self.config.winner_only
        )
        self.control.schedule(result.passes, detail=f"t={now}")

        order = [b.sid for b in result.order if b.valid]

        # Miss registration (performance counters, Table 3).
        misses: list[int] = []
        if count_misses:
            for slot in self.active_slots:
                if slot.record_miss(now):
                    misses.append(slot.config.sid)

        # PRIORITY_UPDATE: circulate one ID, consume, adjust attributes.
        circulated: int | None = None
        serviced: list[tuple[int, PendingPacket]] = []
        if order:
            # The Decision blocks' winner routing is hardwired: the
            # *internal* winner attribute update always targets the
            # block head.  The block mode selects which end of the
            # block is circulated out during PRIORITY_UPDATE (and hence
            # consumed first / counted as the cycle's winner): max-first
            # circulates the head, min-first the tail (Section 5.1).
            update_sid = order[0]
            if self.config.block_mode is BlockMode.MAX_FIRST:
                circulated = order[0]
            else:
                circulated = order[-1]
            if consume == "winner":
                slot = self.slot(circulated)
                if count_misses and slot.head_is_late(now):
                    # The miss path above already applied this head's
                    # loss adjustment; just consume the packet.
                    packet = slot.service(now, as_winner=False)
                else:
                    packet = slot.service(now)
                if packet is not None:
                    serviced.append((circulated, packet))
            elif consume == "block":
                if self.config.routing is Routing.WR:
                    raise ValueError(
                        "block consumption requires BA routing "
                        "(WR emits only the winner)"
                    )
                consume_order = (
                    order
                    if self.config.block_mode is BlockMode.MAX_FIRST
                    else tuple(reversed(order))
                )
                for sid in consume_order:
                    packet = self.slot(sid).service(
                        now, as_winner=(sid == update_sid)
                    )
                    if packet is not None:
                        serviced.append((sid, packet))
            self.slot(circulated).record_win()
        self.control.priority_update(
            self.config.update_cycles, detail=f"circulate={circulated}"
        )

        outcome = DecisionOutcome(
            now=now,
            block=tuple(order),
            circulated_sid=circulated,
            serviced=tuple(serviced),
            misses=tuple(misses),
            hw_cycles=result.passes + self.config.update_cycles,
            dropped=tuple(dropped),
        )
        if self.observer is not None:
            self.observer.on_decision(outcome)
        return outcome

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    @property
    def cycles_per_decision(self) -> int:
        """Hardware cycles one decision cycle consumes."""
        return self.config.sort_passes + self.config.update_cycles

    def counters(self) -> dict[int, "object"]:
        """Per-stream performance counters, keyed by stream ID."""
        return {s.config.sid: s.counters for s in self.active_slots}
