"""Verilog skeleton generation for the scheduler core.

The paper's artifact is RTL on a Virtex-I; this module emits a
synthesizable-style Verilog skeleton of the canonical architecture for
a given :class:`~repro.core.config.ArchConfig` — the starting point a
hardware engineer would expect from an open-source release of the
system:

* ``decision_block`` — the single-cycle pairwise comparator over the
  packed attribute bundle, combinational logic mirroring
  :mod:`repro.core.bitlevel` (whose Python twin is property-tested
  against the golden model);
* ``register_base_block`` — per-slot attribute registers with the
  winner-ID match and window-adjustment hooks;
* ``shuffle_stage`` — the perfect-shuffle wiring and ``N/2`` decision
  block instances;
* ``sharestreams_scheduler`` — the top module with the control FSM
  (LOAD / SCHEDULE / PRIORITY_UPDATE).

The emitted text is *structural documentation*, not verified RTL — we
cannot synthesize here.  Tests pin the structural invariants: instance
counts, bus widths, the shuffle permutation in the wiring, and
determinism.
"""

from __future__ import annotations

from repro.core.attributes import ATTRIBUTE_WORD_BITS
from repro.core.config import ArchConfig
from repro.core.shuffle import perfect_shuffle

__all__ = ["emit_verilog", "emit_decision_block", "emit_top"]

_HEADER = """\
// -----------------------------------------------------------------
// ShareStreams scheduler core — generated skeleton
// {n} stream-slots, {blocks} decision blocks, routing={routing},
// bundle width {w} bits (deadline 16 | x 8 | y 8 | arrival 16 | sid 5 | valid 1)
// -----------------------------------------------------------------
"""


def emit_decision_block(*, deadline_only: bool = False) -> str:
    """The single-cycle pairwise comparator (Figure 5)."""
    w = ATTRIBUTE_WORD_BITS
    window_logic = (
        ""
        if deadline_only
        else """
  // window-constraint comparison: two 8x8 products (hard multipliers
  // on Virtex-II) plus zero-constraint detectors
  wire        a_zero = (a_x == 8'd0) | (a_y == 8'd0);
  wire        b_zero = (b_x == 8'd0) | (b_y == 8'd0);
  wire [15:0] prod_a = a_x * b_y;
  wire [15:0] prod_b = b_x * a_y;
  wire        wc_a_first  = (a_zero & b_zero) ? (a_y > b_y)
                          : (a_zero ^ b_zero) ? a_zero
                          : (prod_a != prod_b) ? (prod_a < prod_b)
                          : (a_x < b_x);
  wire        wc_decides  = (a_zero & b_zero) ? (a_y != b_y)
                          : (a_zero ^ b_zero) ? 1'b1
                          : (prod_a != prod_b) | (a_x != b_x);
"""
    )
    wc_mux = (
        "arr_decides ? arr_a_first : sid_a_first"
        if deadline_only
        else "wc_decides ? wc_a_first : arr_decides ? arr_a_first : sid_a_first"
    )
    return f"""\
module decision_block (
  input  wire [{w - 1}:0] a_bundle,
  input  wire [{w - 1}:0] b_bundle,
  output wire [{w - 1}:0] winner,
  output wire [{w - 1}:0] loser
);
  // field extraction (deadline 16 | x 8 | y 8 | arrival 16 | sid 5 | valid 1)
  wire [15:0] a_deadline = a_bundle[53:38];
  wire [7:0]  a_x        = a_bundle[37:30];
  wire [7:0]  a_y        = a_bundle[29:22];
  wire [15:0] a_arrival  = a_bundle[21:6];
  wire [4:0]  a_sid      = a_bundle[5:1];
  wire        a_valid    = a_bundle[0];
  wire [15:0] b_deadline = b_bundle[53:38];
  wire [7:0]  b_x        = b_bundle[37:30];
  wire [7:0]  b_y        = b_bundle[29:22];
  wire [15:0] b_arrival  = b_bundle[21:6];
  wire [4:0]  b_sid      = b_bundle[5:1];
  wire        b_valid    = b_bundle[0];

  // serial (wrap-aware) 16-bit comparisons: subtract, test the MSB
  wire        dl_a_first  = (a_deadline != b_deadline) &
                            ((a_deadline - b_deadline) & 16'h8000) != 16'h0;
  wire        dl_b_first  = (a_deadline != b_deadline) & ~dl_a_first;
  wire        arr_a_first = (a_arrival != b_arrival) &
                            ((a_arrival - b_arrival) & 16'h8000) != 16'h0;
  wire        arr_decides = (a_arrival != b_arrival);
{window_logic}
  wire        sid_a_first = (a_sid <= b_sid);

  // priority encoder (Table 2 mux cascade, all rules evaluated concurrently)
  wire a_first = (a_valid != b_valid) ? a_valid
               : dl_a_first ? 1'b1
               : dl_b_first ? 1'b0
               : {wc_mux};

  assign winner = a_first ? a_bundle : b_bundle;
  assign loser  = a_first ? b_bundle : a_bundle;
endmodule
"""


def _emit_register_block() -> str:
    w = ATTRIBUTE_WORD_BITS
    return f"""\
module register_base_block (
  input  wire        clk,
  input  wire        rst,
  input  wire        load_en,        // LOAD: latch next request
  input  wire [15:0] load_deadline,
  input  wire [15:0] load_arrival,
  input  wire        update_en,      // PRIORITY_UPDATE strobe
  input  wire [4:0]  winner_sid,     // circulated winner ID
  input  wire [4:0]  my_sid,
  output wire [{w - 1}:0] bundle
);
  reg [15:0] deadline, arrival;
  reg [7:0]  x_cur, y_cur;
  reg        valid;
  wire       i_won = update_en & (winner_sid == my_sid);

  // attribute adjustment (DWCS window update / EDF deadline advance)
  // hooks: see repro.core.register_block for the behavioral semantics
  always @(posedge clk) begin
    if (rst) begin
      deadline <= 16'd0; arrival <= 16'd0;
      x_cur <= 8'd0; y_cur <= 8'd0; valid <= 1'b0;
    end else if (load_en) begin
      deadline <= load_deadline; arrival <= load_arrival; valid <= 1'b1;
    end else if (i_won) begin
      valid <= 1'b0;  // head consumed; streaming unit reloads
    end
  end

  assign bundle = {{deadline, x_cur, y_cur, arrival, my_sid, valid}};
endmodule
"""


def _emit_shuffle_stage(n: int) -> str:
    w = ATTRIBUTE_WORD_BITS
    # The perfect-shuffle wiring: output position i takes input
    # shuffled[i]; we emit it as explicit wire assignments.
    order = perfect_shuffle(list(range(n)))
    wiring = "\n".join(
        f"  assign shuffled[{i}] = slots_in[{src}];"
        for i, src in enumerate(order)
    )
    instances = "\n".join(
        f"""\
  decision_block u_decide_{j} (
    .a_bundle(shuffled[{2 * j}]),
    .b_bundle(shuffled[{2 * j + 1}]),
    .winner(stage_out[{2 * j}]),
    .loser(stage_out[{2 * j + 1}])
  );"""
        for j in range(n // 2)
    )
    return f"""\
module shuffle_stage (
  input  wire [{w - 1}:0] slots_in  [0:{n - 1}],
  output wire [{w - 1}:0] stage_out [0:{n - 1}]
);
  wire [{w - 1}:0] shuffled [0:{n - 1}];
{wiring}

{instances}
endmodule
"""


def emit_top(config: ArchConfig) -> str:
    """The top module: register file, recirculation, control FSM."""
    n = config.n_slots
    k = config.sort_passes
    return f"""\
module sharestreams_scheduler (
  input  wire clk,
  input  wire rst,
  input  wire start,
  output reg  [4:0] winner_sid,
  output reg        winner_valid
);
  // control FSM: LOAD -> (SCHEDULE x{k} <-> PRIORITY_UPDATE)
  localparam S_LOAD            = 2'd0;
  localparam S_SCHEDULE        = 2'd1;
  localparam S_PRIORITY_UPDATE = 2'd2;
  reg [1:0] state;
  reg [2:0] pass_count;  // {k} recirculation passes per decision

  // {n} register base blocks + one shuffle stage, recirculated
  // (instances elided in the skeleton: see register_base_block and
  //  shuffle_stage; the steering muxes feed stage_out back to slots_in)

  always @(posedge clk) begin
    if (rst) begin
      state <= S_LOAD; pass_count <= 3'd0; winner_valid <= 1'b0;
    end else case (state)
      S_LOAD:     if (start) state <= S_SCHEDULE;
      S_SCHEDULE: begin
        if (pass_count == 3'd{k - 1}) begin
          pass_count <= 3'd0;
          state <= S_PRIORITY_UPDATE;
        end else pass_count <= pass_count + 3'd1;
      end
      S_PRIORITY_UPDATE: begin
        winner_valid <= 1'b1;   // circulate block head sid
        state <= S_SCHEDULE;    // Figure 6: alternate thereafter
      end
      default: state <= S_LOAD;
    endcase
  end
endmodule
"""


def emit_verilog(config: ArchConfig) -> str:
    """Full generated skeleton for one architecture configuration."""
    parts = [
        _HEADER.format(
            n=config.n_slots,
            blocks=config.decision_blocks,
            routing=config.routing.value.upper(),
            w=ATTRIBUTE_WORD_BITS,
        ),
        emit_decision_block(deadline_only=config.deadline_only),
        _emit_register_block(),
        _emit_shuffle_stage(config.n_slots),
        emit_top(config),
    ]
    return "\n".join(parts)
