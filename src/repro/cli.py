"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro table3 [--frames N]  # the headline experiment
    python -m repro figure8 [--frames N]
    python -m repro comparison
    ...

Each subcommand runs the corresponding experiment driver and prints
the reproduced rows/series next to the paper's reported values — the
same output the benchmark harness records.
"""

from __future__ import annotations

import argparse
import sys

from repro.metrics.report import render_series, render_table

__all__ = ["main"]


def _cmd_table1(args) -> None:
    from repro.experiments.table1 import (
        build_table1,
        witness_dwcs_dynamics,
        witness_tag_stability,
    )

    rows = build_table1()
    print(
        render_table(
            ["Characteristic", "Priority-class", "Fair-queuing", "Window-constrained"],
            [
                [r.characteristic, r.priority_class, r.fair_queuing, r.window_constrained]
                for r in rows
            ],
            title="Table 1: Comparing Scheduling Disciplines",
        )
    )
    print(
        f"witnesses: FQ tags immutable={witness_tag_stability()}, "
        f"DWCS dynamic priorities={witness_dwcs_dynamics()}"
    )


def _cmd_table2(args) -> None:
    from repro.experiments.table2 import run_rule_coverage

    cov = run_rule_coverage()
    print(
        render_table(
            ["Rule", "pairs resolved"],
            sorted(
                ((r.value, n) for r, n in cov.counts.items()),
                key=lambda x: -x[1],
            ),
            title="Table 2: decision-rule coverage",
        )
    )
    print(f"all substantive rules fired: {cov.all_rules_fired}")


def _cmd_table3(args) -> None:
    from repro.experiments.table3 import run_table3

    frames = args.frames or 16_000
    results = run_table3(
        frames, engine=args.engine, observer=args.observability,
        workers=args.workers,
    )
    mf = results["max_finding"]
    bmax = results["block_max_first"]
    bmin = results["block_min_first"]
    rows = []
    for i in range(4):
        rows.append(
            [
                f"Stream {i + 1}",
                mf.rows[i].missed_deadlines,
                bmax.rows[i].missed_deadlines,
                bmin.rows[i].missed_deadlines,
                bmax.rows[i].winner_cycles,
            ]
        )
    rows.append(
        ["Total", mf.total_missed, bmax.total_missed, bmin.total_missed, bmax.decision_cycles]
    )
    print(
        render_table(
            [
                "Stream-Slot",
                "Max-finding missed",
                "Max-first missed",
                "Min-first missed",
                "Block winner cycles",
            ],
            rows,
            title=f"Table 3 at {frames} frames/stream "
            f"(max-finding: {mf.decision_cycles} cycles, block: {bmax.decision_cycles})",
        )
    )


def _cmd_figure1(args) -> None:
    from repro.experiments.figure1 import run_figure1

    sweep = run_figure1()
    print(
        f"Figure 1 framework sweep: fpga realizable "
        f"{sweep.realizable_fraction('fpga'):.2f}, software "
        f"{sweep.realizable_fraction('software'):.2f}"
    )
    rows = [
        [
            p.discipline,
            p.n_streams,
            p.length_bytes,
            f"{p.rate_bps / 1e9:g}G",
            p.target,
            "yes" if p.realizable else "no",
        ]
        for p in sweep.points
        if p.length_bytes == 64
    ]
    print(
        render_table(
            ["discipline", "streams", "frame", "link", "target", "realizable"],
            rows,
            title="64-byte-frame slice",
        )
    )


def _cmd_figure6(args) -> None:
    from repro.experiments.figure6 import render_timeline, run_figure6

    print("Figure 6: scheduler timeline (4 stream-slots)")
    print(render_timeline(run_figure6(args.frames or 6)))


def _cmd_figure7(args) -> None:
    from repro.experiments.figure7 import degradation_ba_vs_wr, run_figure7

    points = run_figure7()
    print(
        render_table(
            ["slots", "variant", "slices", "clock MHz", "sort cycles"],
            [
                [p.n_slots, p.routing.value.upper(), round(p.slices), f"{p.clock_mhz:.1f}", p.sort_cycles]
                for p in points
            ],
            title="Figure 7: area-clock characteristics (Virtex-I)",
        )
    )
    deg = degradation_ba_vs_wr(points)
    print("BA vs WR clock: " + ", ".join(f"{n}:{d:.0%}" for n, d in deg.items()))


def _cmd_figure8(args) -> None:
    from repro.experiments.figure8 import run_figure8

    result = run_figure8(
        args.frames or 16_000, engine=args.engine,
        observer=args.observability,
    )
    print(
        render_table(
            ["stream", "steady MBps", "ratio"],
            [
                [f"Stream {sid + 1}", f"{mbps:.2f}", f"{result.ratios[sid]:.2f}"]
                for sid, mbps in sorted(result.steady_mbps.items())
            ],
            title="Figure 8: fair bandwidth allocation (paper: 2/2/4/8 MBps)",
        )
    )


def _cmd_figure9(args) -> None:
    from repro.experiments.figure9 import run_figure9

    result = run_figure9(
        n_bursts=3, burst_size=args.frames or 4000, engine=args.engine,
        observer=args.observability,
    )
    delays = result.mean_delays_us()
    print(
        render_table(
            ["stream", "mean delay ms", "zigzag score"],
            [
                [
                    f"Stream {sid + 1}",
                    f"{delays[sid] / 1e3:.2f}",
                    f"{result.zigzag_score(sid, args.frames or 4000):.2f}",
                ]
                for sid in sorted(delays)
            ],
            title="Figure 9: queuing delay under bursty arrivals",
        )
    )
    for sid in sorted(delays):
        s = result.series[sid]
        print(
            render_series(
                f"stream {sid + 1}",
                s.departures_us / 1e6,
                s.delays_us / 1e3,
                max_points=10,
                x_unit="s",
                y_unit="ms",
            )
        )


def _cmd_figure10(args) -> None:
    from repro.experiments.figure10 import run_figure10

    result = run_figure10(
        args.frames or 16_000, engine=args.engine,
        observer=args.observability,
    )
    print(
        render_table(
            ["slot/set", "streamlet MBps"],
            [[g, f"{v:.4f}"] for g, v in result.representative_mbps().items()],
            title="Figure 10: 100-streamlet aggregation "
            "(paper: 0.02/0.02/0.04; slot4 set1 = 2x set2)",
        )
    )


def _cmd_comparison(args) -> None:
    from repro.experiments.comparison import run_comparison

    rows = run_comparison(frames_per_stream=args.frames or 4000)
    print(
        render_table(
            ["system", "packets/second", "source"],
            [[r.system, f"{r.pps:,.0f}", r.source] for r in rows],
            title="Section 5.2: performance comparison",
        )
    )


def _cmd_ablation_sort(args) -> None:
    from repro.experiments.ablations import sort_schedule_sweep

    points = sort_schedule_sweep(trials=args.frames or 200)
    print(
        render_table(
            ["slots", "schedule", "passes", "blocks fully sorted"],
            [
                [p.n_slots, p.schedule, p.passes, f"{p.fully_sorted_fraction:.2f}"]
                for p in points
            ],
            title="Ablation: recirculation schedule vs block-order quality",
        )
    )


def _cmd_ablation_transfers(args) -> None:
    from repro.experiments.ablations import pio_dma_crossover, transfer_cost_sweep

    print(
        render_table(
            ["words", "PIO us", "DMA us", "best"],
            [
                [w, f"{p:.2f}", f"{d:.2f}", best]
                for w, p, d, best in pio_dma_crossover()
            ],
            title="PIO vs DMA crossover",
        )
    )
    print()
    print(
        render_table(
            ["per-frame PIO cost us", "endsystem pps"],
            [
                [f"{c:.2f}", f"{pps:,.0f}"]
                for c, pps in transfer_cost_sweep(
                    frames_per_stream=args.frames or 600
                )
            ],
            title="endsystem throughput vs transfer cost",
        )
    )


def _cmd_ablation_extensions(args) -> None:
    from repro.experiments.ablations import extensions_sweep

    print(
        render_table(
            ["slots", "baseline Mpps", "+compute-ahead", "+Virtex-II", "area factor"],
            [
                [
                    r["n_slots"],
                    f"{r['base_pps'] / 1e6:.2f}",
                    f"{r['compute_ahead_pps'] / 1e6:.2f}",
                    f"{r['virtex2_pps'] / 1e6:.2f}",
                    f"{r['area_factor']:.2f}x",
                ]
                for r in extensions_sweep()
            ],
            title="Section 6 extensions",
        )
    )


def _cmd_verilog(args) -> None:
    from repro.core.config import ArchConfig
    from repro.core.hdl import emit_verilog

    print(emit_verilog(ArchConfig(n_slots=args.slots)))


def _cmd_isolation(args) -> None:
    from repro.experiments.isolation import run_isolation

    results = run_isolation(
        horizon=args.frames or 4000, engine=args.engine,
        observer=args.observability,
    )
    print(
        render_table(
            ["system", "queues", "rt miss rate", "tight-flow p99 delay"],
            [
                [
                    r.system,
                    r.queues,
                    f"{r.rt_miss_rate:.1%}",
                    f"{r.tight_flow_p99_delay:.1f}",
                ]
                for r in results
            ],
            title="Per-flow isolation vs Section 5.2 line-card peers",
        )
    )


def _cmd_monitor(args) -> None:
    """Live conformance dashboard over the fair-share endsystem run.

    Runs the Figure 8 workload (four backlogged streams at 1:1:2:4)
    with a :class:`~repro.observability.monitor.ConformanceMonitor`
    attached — share-band SLOs around the paper's targets — and
    redraws a terminal dashboard every rollup window.  ``--slo`` /
    ``--flight-recorder`` / ``--serve-metrics`` compose as with the
    experiment subcommands.
    """
    from repro.endsystem.host import EndsystemConfig, EndsystemRouter
    from repro.observability import Dashboard
    from repro.traffic.specs import ratio_workload

    obs = args.observability  # always built for this subcommand
    dashboard = Dashboard(obs.monitor).attach()
    specs = ratio_workload(_MONITOR_RATIOS, frames_per_stream=args.frames or 4000)
    router = EndsystemRouter(
        specs, EndsystemConfig(engine=args.engine), observer=obs
    )
    router.run(preload=True)
    if dashboard.frames_drawn == 0:
        dashboard.draw()  # run shorter than one window: show the flush
    print()
    print(obs.monitor.report())


#: The Figure 8/10 bandwidth split the monitor subcommand watches.
_MONITOR_RATIOS = (1, 1, 2, 4)


def _default_slos(experiment: str):
    """Per-experiment default objectives for ``--slo``.

    * fair-share runs (figure8 / figure10 / monitor) get share-band
      SLOs around the 1:1:2:4 targets of Figures 8 and 10;
    * table3 gets zero miss budgets — the max-finding configuration is
      the paper's own overload case, and flagging it demonstrates
      detection (block max-first stays clean);
    * everything else monitors rollups without objectives.
    """
    from repro.observability import StreamSlo, slos_from_shares

    if experiment in ("figure8", "figure10", "monitor"):
        return slos_from_shares(
            {sid: float(r) for sid, r in enumerate(_MONITOR_RATIOS)}
        )
    if experiment == "table3":
        return [StreamSlo(sid=i, miss_budget=0) for i in range(4)]
    return []


def _cmd_sweep(args) -> None:
    """``--sweep`` path: run one figure/isolation experiment per value.

    Values are workload sizes for the figures (frames per stream, or
    burst size for figure9) and best-effort seeds for isolation;
    points run through :func:`repro.runner.run_sharded`, so
    ``--workers`` / ``--cache-dir`` apply and the merged summary is
    identical for any worker count.
    """
    from repro.experiments.sweeps import sweep_figures, sweep_isolation

    values = [int(v) for v in args.sweep.split(",") if v.strip()]
    if args.experiment == "isolation":
        result = sweep_isolation(
            values,
            horizon=args.frames or 4000,
            engine=args.engine,
            workers=args.workers,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )
    else:
        result = sweep_figures(
            args.experiment,
            values,
            engine=args.engine,
            workers=args.workers,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )
    rows = []
    for point in result.points:
        for group, series in sorted(point.summary.items()):
            if isinstance(series, dict):
                for key, value in sorted(series.items()):
                    rows.append(
                        [point.param, group, key, _render_value(value)]
                    )
            else:  # isolation: list of per-system rows
                for entry in series:
                    rows.append(
                        [
                            point.param,
                            entry["system"],
                            f"miss {entry['rt_miss_rate']:.1%}",
                            f"p99 {entry['tight_flow_p99_delay']:.1f}",
                        ]
                    )
    from repro.experiments.sweeps import PARAM_NAMES

    print(
        render_table(
            [PARAM_NAMES[args.experiment], "series", "key", "value"],
            rows,
            title=f"{args.experiment} sweep over {values} "
            f"({result.executed} executed, {result.cached} cached, "
            f"{result.workers} worker(s))",
        )
    )
    for failure in result.failures:
        print(f"FAILED {failure.describe()}")
    if args.summary_json:
        with open(args.summary_json, "w", encoding="utf-8") as fh:
            fh.write(result.summary_json())
        print(f"summary written to {args.summary_json}")
    if not result.passed:
        raise SystemExit(1)


def _render_value(value) -> str:
    return f"{value:.4f}" if isinstance(value, float) else str(value)


def _cmd_pifo(args) -> None:
    """Three-way validation of programmable PIFO rank functions.

    Runs :func:`repro.core.differential.validate_rank_function` for the
    selected (or every registered) rank function: reference vs batch vs
    tensor byte-identical summaries, plus service-order equivalence
    against the handwritten counterpart where one is declared.
    """
    import json

    from repro.core.differential import validate_rank_function
    from repro.disciplines.pifo import PIFO_RANK_FUNCTIONS, rank_function

    if args.discipline is None:
        names = sorted(PIFO_RANK_FUNCTIONS)
    else:
        if not args.discipline.startswith("pifo:"):
            raise SystemExit(
                f"--discipline takes pifo:<name>; got {args.discipline!r}"
            )
        names = [args.discipline[len("pifo:"):]]
    count = args.frames if args.frames is not None else 20
    rows = []
    summaries = {}
    failed = False
    for name in names:
        fn = rank_function(name)
        result = validate_rank_function(
            fn, seeds=range(count), n_cycles=args.cycles
        )
        summaries[f"pifo:{name}"] = result.summary()
        rows.append(
            [
                f"pifo:{name}",
                fn.rank.describe(),
                fn.equivalent_to or "-",
                str(result.scenarios),
                str(result.services),
                "pass" if result.passed else "FAIL",
            ]
        )
        for divergence in result.divergences:
            print(f"DIVERGENCE {divergence}")
        failed = failed or not result.passed
    print(
        render_table(
            ["discipline", "rank", "equivalent to", "scenarios", "services", "3-way"],
            rows,
            title=f"PIFO rank functions ({count} scenarios each, "
            f"{args.cycles} cycles; reference == batch == tensor)",
        )
    )
    if args.summary_json:
        payload = {
            "format": 1,
            "kind": "pifo-validation",
            "results": summaries,
        }
        with open(args.summary_json, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, sort_keys=True, indent=1) + "\n")
        print(f"summary written to {args.summary_json}")
    if failed:
        raise SystemExit(1)


def _cmd_aggregation(args) -> None:
    """Million-stream hierarchical aggregation tier (demo or validation).

    Default mode replays a seeded churn workload — ``--streams``
    lightweight streams hash-bucketed into ``--aggregate`` slots, with
    intra-aggregate ordering by ``--agg-discipline`` — on the selected
    engine and tabulates the per-aggregate rollups.  ``--validate``
    instead runs :func:`repro.core.differential.validate_aggregation`:
    reference vs batch vs tensor byte-identical summaries over
    ``--frames`` seeded churn scenarios.
    """
    import json

    from repro.aggregation import (
        generate_aggregation_scenario,
        hash_bucket,
        run_aggregation,
    )

    if args.aggregate < 2 or args.aggregate & (args.aggregate - 1):
        raise SystemExit("--aggregate must be a power of two >= 2")
    if args.validate:
        from repro.core.differential import validate_aggregation

        count = args.frames if args.frames is not None else 10
        result = validate_aggregation(
            seeds=range(count),
            n_streams=args.streams or 48,
            n_aggregates=args.aggregate,
            n_cycles=args.cycles,
            discipline=args.agg_discipline,
        )
        for divergence in result.divergences:
            print(f"DIVERGENCE {divergence}")
        print(
            render_table(
                ["discipline", "aggregates", "scenarios", "streams", "services", "3-way"],
                [
                    [
                        result.discipline,
                        str(result.n_aggregates),
                        str(result.scenarios),
                        str(result.streams),
                        str(result.services),
                        "pass" if result.passed else "FAIL",
                    ]
                ],
                title=f"Aggregation tier ({count} churn scenarios, "
                f"{args.cycles} cycles; reference == batch == tensor)",
            )
        )
        if args.summary_json:
            with open(args.summary_json, "w", encoding="utf-8") as fh:
                fh.write(result.summary_json())
            print(f"summary written to {args.summary_json}")
        if not result.passed:
            raise SystemExit(1)
        return
    scenario = generate_aggregation_scenario(
        0,
        n_streams=args.streams or 10_000,
        n_aggregates=args.aggregate,
        n_cycles=args.cycles,
        discipline=args.agg_discipline,
    )
    obs = args.observability
    if obs is not None and obs.monitor is not None:
        # Per-aggregate share bands from the initial membership: each
        # aggregate's expected service share is its member-weight sum
        # (stream ids at the engine level are aggregate ids).
        from repro.observability import ConformanceMonitor, slos_from_shares

        weights: dict[int, int] = {}
        for sid, weight in scenario.initial:
            bucket = hash_bucket(sid, args.aggregate)
            weights[bucket] = weights.get(bucket, 0) + weight
        obs.monitor = ConformanceMonitor(
            slos_from_shares({a: float(w) for a, w in weights.items()}),
            window_cycles=args.slo_window,
            registry=obs.metrics,
            dump_dir=args.flight_recorder,
        )
    summary = run_aggregation(scenario, engine=args.engine, observer=obs)
    per = summary["per_aggregate"]
    print(
        render_table(
            ["aggregate", "members", "weight", "enqueued", "serviced"],
            [
                [
                    str(a),
                    str(per["members"][a]),
                    str(per["weight"][a]),
                    str(per["enqueued"][a]),
                    str(per["serviced"][a]),
                ]
                for a in range(args.aggregate)
            ],
            title=f"Aggregation tier: {summary['streams_joined']} streams "
            f"({summary['streams_left']} left) on {args.aggregate} "
            f"aggregates, {args.agg_discipline} intra, "
            f"{summary['serviced']} serviced in {summary['cycles']} cycles "
            f"[{args.engine}]",
        )
    )
    print(f"service digest: {summary['service_digest']}")
    if args.summary_json:
        with open(args.summary_json, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(summary, sort_keys=True, indent=1) + "\n")
        print(f"summary written to {args.summary_json}")


#: Experiments whose drivers accept the telemetry hook.
_OBSERVABLE = {
    "table3", "figure8", "figure9", "figure10", "isolation", "monitor",
    "aggregation",
}

#: Experiments ``--sweep`` can iterate (see repro.experiments.sweeps).
_SWEEPABLE = {"figure8", "figure9", "figure10", "isolation"}

def _trace_main(argv: list[str]) -> int:
    """``repro trace``: span-traced campaign + rollup/critical-path report."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run a span-traced differential validation campaign "
        "(or load a previously exported span file) and report the "
        "per-(kind, name) rollup, optionally the critical path, and "
        "export JSONL / Chrome trace-event files.",
    )
    parser.add_argument(
        "--count", type=int, default=24,
        help="scenario seeds in the campaign (default 24)",
    )
    parser.add_argument(
        "--cycles", type=int, default=200,
        help="decision cycles per scenario (default 200)",
    )
    parser.add_argument(
        "--engine", choices=("batch", "tensor"), default="tensor",
        help="fast engine under validation (default tensor)",
    )
    parser.add_argument(
        "--engine-backend", default="numpy",
        help="array namespace for the tensor engine "
        "(numpy/torch/cupy/array_api_strict; see repro.core.backend)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (0 = all cores; the canonical span tree "
        "is byte-identical for any value)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="on-disk scenario cache (hits become spans tagged cache=hit)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir (neither read nor write entries)",
    )
    parser.add_argument(
        "--trace-id", default="campaign",
        help="trace id seeding the deterministic span ids",
    )
    parser.add_argument(
        "--input", metavar="SPANS.jsonl", default=None,
        help="report on an exported span file instead of running",
    )
    parser.add_argument(
        "--spans", metavar="PATH", default=None,
        help="export the full span tree (timing included) as JSONL",
    )
    parser.add_argument(
        "--canonical", metavar="PATH", default=None,
        help="export the canonical worker-invariant span JSONL",
    )
    parser.add_argument(
        "--export-chrome", metavar="PATH", default=None,
        help="export a Chrome trace-event JSON (Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--critical-path", action="store_true",
        help="print the longest root-to-leaf wall-time chain",
    )
    args = parser.parse_args(argv)

    import json as _json
    from pathlib import Path

    from repro.observability.spans import (
        SpanTracer,
        canonical_span_bytes,
        chrome_trace,
        critical_path,
        load_spans_jsonl,
        spans_jsonl_bytes,
        summarize_spans,
    )

    code = 0
    if args.input is not None:
        records = load_spans_jsonl(args.input)
        trace_id = args.trace_id
        print(f"loaded {len(records)} spans from {args.input}")
    else:
        from repro.core.differential import campaign

        tracer = SpanTracer(args.trace_id)
        result = campaign(
            range(args.count),
            n_cycles=args.cycles,
            engine=args.engine,
            workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
            use_cache=not args.no_cache,
            tracer=tracer,
            engine_backend=args.engine_backend,
        )
        records = tracer.records()
        trace_id = tracer.trace_id
        print(
            f"campaign: {result.scenarios} scenarios x {args.cycles} cycles, "
            f"engine={args.engine} ({args.engine_backend}), "
            f"workers={result.workers}, "
            f"cached={result.cached}, passed={result.passed}"
        )
        code = 0 if result.passed else 1

    rows = []
    for g in summarize_spans(records):
        annotations = [
            f"{k}={v}" for k, v in sorted(g["tag_totals"].items())
        ] + [
            f"{k} x{n}" for k, n in sorted(g["tag_counts"].items())
        ]
        rows.append(
            [
                g["kind"],
                g["name"],
                g["count"],
                f"{g['wall_us'] / 1000.0:.3f}",
                " ".join(annotations) or "-",
            ]
        )
    print(
        render_table(
            ["kind", "name", "spans", "wall (ms)", "tags"],
            rows,
            title=f"span rollup ({len(records)} spans, trace_id={trace_id})",
        )
    )
    if args.critical_path:
        print(
            render_table(
                ["path", "kind", "wall (ms)", "self (ms)", "of root"],
                [
                    [
                        e["path"],
                        e["kind"],
                        f"{e['wall_us'] / 1000.0:.3f}",
                        f"{e['self_us'] / 1000.0:.3f}",
                        f"{e['fraction']:.1%}",
                    ]
                    for e in critical_path(records)
                ],
                title="critical path (longest root-to-leaf chain)",
            )
        )
    if args.spans:
        Path(args.spans).write_bytes(spans_jsonl_bytes(records))
        print(f"spans written to {args.spans}")
    if args.canonical:
        Path(args.canonical).write_bytes(canonical_span_bytes(records))
        print(f"canonical spans written to {args.canonical}")
    if args.export_chrome:
        trace = chrome_trace(records, trace_id=trace_id)
        Path(args.export_chrome).write_text(
            _json.dumps(trace, sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
        print(
            f"chrome trace ({len(trace['traceEvents'])} events) written "
            f"to {args.export_chrome}"
        )
    return code


def _bench_main(argv: list[str]) -> int:
    """``repro bench trend``: normalize BENCH_*.json into the trajectory."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark-artifact maintenance: normalize every "
        "BENCH_*.json into the versioned record format and maintain "
        "BENCH_TRAJECTORY.json for the CI regression gate.",
    )
    parser.add_argument(
        "action", choices=("trend",),
        help="trend: append a normalized snapshot of all BENCH_*.json "
        "files to the trajectory (idempotent; identical consecutive "
        "snapshots coalesce)",
    )
    parser.add_argument(
        "--root", metavar="DIR", default=".",
        help="directory scanned for BENCH_*.json files (default .)",
    )
    parser.add_argument(
        "--trajectory", metavar="PATH", default=None,
        help="trajectory file (default <root>/BENCH_TRAJECTORY.json)",
    )
    parser.add_argument(
        "--label", default="",
        help="label recorded on an appended snapshot (e.g. a git sha)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="only validate the existing trajectory file; append nothing",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="after appending, compare the last two snapshots and fail "
        "on any out-of-tolerance regression",
    )
    args = parser.parse_args(argv)

    from pathlib import Path

    from repro import benchtrend

    root = Path(args.root)
    trajectory_path = (
        Path(args.trajectory)
        if args.trajectory is not None
        else root / "BENCH_TRAJECTORY.json"
    )

    if args.validate:
        if not trajectory_path.exists():
            print(f"no trajectory at {trajectory_path}")
            return 1
        trajectory = benchtrend.load_trajectory(trajectory_path)
        problems = benchtrend.validate_trajectory(trajectory)
        for problem in problems:
            print(f"invalid: {problem}")
        if not problems:
            print(
                f"trajectory ok: {len(trajectory['snapshots'])} snapshot(s) "
                f"at {trajectory_path}"
            )
        return 1 if problems else 0

    bench_files = benchtrend.discover_bench_files(root)
    if not bench_files:
        print(f"no BENCH_*.json files under {root}")
        return 1
    snapshot = benchtrend.build_snapshot(root, label=args.label)
    trajectory = benchtrend.load_trajectory(trajectory_path)
    appended = benchtrend.append_snapshot(trajectory, snapshot)
    benchtrend.write_trajectory(trajectory_path, trajectory)
    for path in bench_files:
        print(f"normalized {path.name} -> {benchtrend.bench_slug(path)}")
    state = "appended snapshot" if appended else "unchanged (coalesced)"
    print(
        f"{state}: {len(trajectory['snapshots'])} snapshot(s) in "
        f"{trajectory_path}"
    )
    if args.check:
        regressions = benchtrend.check_regressions(trajectory)
        for regression in regressions:
            print(f"regression: {regression}")
        if regressions:
            return 1
        print("regression check: ok")
    return 0


_COMMANDS = {
    "monitor": _cmd_monitor,
    "verilog": _cmd_verilog,
    "isolation": _cmd_isolation,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "figure1": _cmd_figure1,
    "figure6": _cmd_figure6,
    "figure7": _cmd_figure7,
    "figure8": _cmd_figure8,
    "figure9": _cmd_figure9,
    "figure10": _cmd_figure10,
    "comparison": _cmd_comparison,
    "pifo": _cmd_pifo,
    "aggregation": _cmd_aggregation,
    "ablation-sort": _cmd_ablation_sort,
    "ablation-transfers": _cmd_ablation_transfers,
    "ablation-extensions": _cmd_ablation_extensions,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # Multi-word subcommands route before the flat experiment parser.
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the ShareStreams paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["list"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        help="workload size override (frames per stream / burst size)",
    )
    parser.add_argument(
        "--slots",
        type=int,
        default=4,
        help="stream-slot count (verilog generation)",
    )
    parser.add_argument(
        "--discipline",
        metavar="pifo:<name>",
        default=None,
        help="rank function for the pifo experiment (e.g. pifo:sfq); "
        "default: validate every registered rank function",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=200,
        help="arrival cycles per scenario (pifo experiment)",
    )
    parser.add_argument(
        "--aggregate",
        type=int,
        metavar="N",
        default=16,
        help="aggregate count for the aggregation experiment (one "
        "scheduler slot per aggregate; power of two)",
    )
    parser.add_argument(
        "--streams",
        type=int,
        metavar="N",
        default=None,
        help="stream population for the aggregation experiment "
        "(default: 10000 for the demo run, 48 per --validate scenario)",
    )
    parser.add_argument(
        "--agg-discipline",
        metavar="pifo:<name>",
        default="pifo:sfq",
        help="intra-aggregate ordering discipline for the aggregation "
        "experiment (any registered rank function; default pifo:sfq)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="aggregation experiment: run the three-way differential "
        "validation campaign instead of the demo workload",
    )
    parser.add_argument(
        "--engine",
        choices=("reference", "batch", "tensor"),
        default="reference",
        help="scheduler engine: cycle-level object model (oracle), the "
        "vectorized batch engine, or the scenario-tensorized campaign "
        "engine (both fast paths cross-validated against the oracle)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record the structured decision trace and print its tail "
        "plus the per-phase profile after the run",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the run's metrics registry to PATH "
        "(.json -> JSON, anything else -> Prometheus text format)",
    )
    parser.add_argument(
        "--slo",
        action="store_true",
        help="evaluate per-stream SLOs online (streaming rollups + "
        "violation detection; default objectives per experiment)",
    )
    parser.add_argument(
        "--slo-window",
        type=int,
        metavar="CYCLES",
        default=256,
        help="rollup window size in decision cycles (default 256)",
    )
    parser.add_argument(
        "--flight-recorder",
        metavar="DIR",
        default=None,
        help="dump the last decision cycles before each SLO violation "
        "to DIR as canonical JSONL (implies --slo)",
    )
    parser.add_argument(
        "--serve-metrics",
        type=int,
        metavar="PORT",
        default=None,
        help="serve /metrics (Prometheus), /rollups and /violations "
        "over HTTP for the duration of the run (0 = ephemeral port)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for parallelizable runs (table3 "
        "configurations, --sweep points; 0 = all cores; results are "
        "identical for any value)",
    )
    parser.add_argument(
        "--sweep",
        metavar="V1,V2,...",
        default=None,
        help="run the experiment once per comma-separated value "
        "(figure8/figure10: frames per stream, figure9: burst size, "
        "isolation: best-effort seed) and tabulate the points",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="on-disk result cache for --sweep points (keyed on the "
        "canonical config + engine + package version)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir (neither read nor write entries)",
    )
    parser.add_argument(
        "--summary-json",
        metavar="PATH",
        default=None,
        help="write the canonical --sweep summary to PATH "
        "(byte-identical across --workers values)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name in sorted(_COMMANDS):
            print(name)
        print("trace")
        print("bench trend")
        return 0
    if args.sweep is not None:
        if args.experiment not in _SWEEPABLE:
            parser.error(
                f"--sweep supported for: {', '.join(sorted(_SWEEPABLE))}"
            )
        if args.trace or args.slo or args.flight_recorder or args.metrics_out:
            parser.error(
                "--sweep points run headless; telemetry flags apply to "
                "single runs only"
            )
        try:
            _cmd_sweep(args)
        except SystemExit as exc:
            return int(exc.code or 0)
        return 0
    monitoring = (
        args.slo or args.flight_recorder is not None
        or args.experiment == "monitor"
    )
    telemetry = (
        args.trace or args.metrics_out or monitoring
        or args.serve_metrics is not None
    )
    args.observability = None
    if telemetry:
        if args.experiment not in _OBSERVABLE:
            parser.error(
                f"--trace/--metrics-out/--slo/--flight-recorder/"
                f"--serve-metrics supported for: "
                f"{', '.join(sorted(_OBSERVABLE))}"
            )
        from repro.observability import Observability

        args.observability = Observability()
        if monitoring:
            from repro.observability import ConformanceMonitor

            args.observability.monitor = ConformanceMonitor(
                _default_slos(args.experiment),
                window_cycles=args.slo_window,
                registry=args.observability.metrics,
                dump_dir=args.flight_recorder,
            )
    obs = args.observability
    server = None
    if args.serve_metrics is not None:
        from repro.observability import TelemetryServer

        server = TelemetryServer(
            obs.metrics, monitor=obs.monitor, port=args.serve_metrics
        ).start()
        print(f"serving telemetry at {server.url}/metrics")
    try:
        _COMMANDS[args.experiment](args)
    finally:
        if server is not None:
            server.stop()
    if obs is not None:
        obs.finalize()
        if args.trace:
            print(obs.render())
        if monitoring and args.experiment != "monitor":
            print(obs.monitor.report())
        if args.metrics_out:
            from repro.metrics.export import write_metrics

            path = write_metrics(args.metrics_out, obs.metrics)
            print(f"metrics written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
