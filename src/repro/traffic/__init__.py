"""Workload generation: arrival processes and stream specifications."""

from repro.traffic.generators import (
    backlogged_arrivals,
    burst_arrivals,
    cbr_arrivals,
    poisson_arrivals,
)
from repro.traffic.mpeg import GoPPattern, mpeg_frame_sizes, mpeg_stream
from repro.traffic.specs import (
    EndsystemStreamSpec,
    periods_for_shares,
    ratio_workload,
)

__all__ = [
    "EndsystemStreamSpec",
    "GoPPattern",
    "backlogged_arrivals",
    "burst_arrivals",
    "cbr_arrivals",
    "mpeg_frame_sizes",
    "mpeg_stream",
    "periods_for_shares",
    "poisson_arrivals",
    "ratio_workload",
]
