"""MPEG-like media stream workload generation.

The paper's framework discussion (Section 1, Figure 1) contrasts
"scheduling and serving MPEG frames (with larger granularity and
larger packet-times than 1500-byte or 64-byte Ethernet frames)" with
wire-speed Ethernet scheduling, and the endsystem realization targets
"multimedia streaming rates of tens of frames every second".

:func:`mpeg_frame_sizes` produces a deterministic group-of-pictures
(GoP) frame-size sequence — large I frames, medium P frames, small B
frames with bounded jitter — and :func:`mpeg_stream` couples it with a
frames-per-second arrival process, giving realistic media workloads for
the endsystem examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GoPPattern", "mpeg_frame_sizes", "mpeg_stream"]


@dataclass(frozen=True, slots=True)
class GoPPattern:
    """A group-of-pictures structure and nominal frame sizes (bytes)."""

    structure: str = "IBBPBBPBBPBB"
    i_bytes: int = 60_000
    p_bytes: int = 25_000
    b_bytes: int = 10_000
    jitter: float = 0.15  # relative size jitter per frame

    def __post_init__(self) -> None:
        if not self.structure or set(self.structure) - set("IPB"):
            raise ValueError("GoP structure must be a non-empty string of I/P/B")
        if min(self.i_bytes, self.p_bytes, self.b_bytes) <= 0:
            raise ValueError("frame sizes must be positive")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")

    def nominal(self, kind: str) -> int:
        """Nominal size of one frame type."""
        return {"I": self.i_bytes, "P": self.p_bytes, "B": self.b_bytes}[kind]


def mpeg_frame_sizes(
    n_frames: int,
    pattern: GoPPattern | None = None,
    *,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Frame sizes (bytes) for ``n_frames`` following the GoP pattern."""
    if n_frames < 0:
        raise ValueError("frame count must be non-negative")
    pattern = pattern or GoPPattern()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    kinds = [pattern.structure[i % len(pattern.structure)] for i in range(n_frames)]
    nominal = np.array([pattern.nominal(k) for k in kinds], dtype=np.float64)
    if pattern.jitter:
        nominal *= rng.uniform(1 - pattern.jitter, 1 + pattern.jitter, n_frames)
    return np.maximum(1, nominal).astype(np.int64)


def mpeg_stream(
    n_frames: int,
    *,
    fps: float = 30.0,
    pattern: GoPPattern | None = None,
    start_us: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(arrival_times_us, frame_sizes_bytes) for one media stream.

    Frames arrive at a constant ``fps`` cadence (the decoder clock);
    sizes follow the GoP pattern.  The paper's framework point: at tens
    of frames per second the *required scheduling rate* is tiny even
    though per-frame bytes are large — the opposite corner of the
    Figure 1 space from 64-byte wire-speed frames.
    """
    if fps <= 0:
        raise ValueError("fps must be positive")
    arrivals = start_us + np.arange(n_frames, dtype=np.float64) * (1e6 / fps)
    sizes = mpeg_frame_sizes(n_frames, pattern, rng=rng)
    return arrivals, sizes
