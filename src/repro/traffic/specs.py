"""Workload stream specifications for the endsystem experiments.

An :class:`EndsystemStreamSpec` bundles what the paper's Queue Manager
keeps in its per-stream descriptors: the QoS constraint (a bandwidth
share realized as a DWCS request period, or explicit window
constraints), the frame length, and the arrival process feeding the
queue.  Helper constructors build the exact workloads of Figures 8-10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from repro.core.attributes import SchedulingMode
from repro.traffic.generators import backlogged_arrivals

__all__ = ["EndsystemStreamSpec", "ratio_workload"]


@dataclass(slots=True)
class EndsystemStreamSpec:
    """One stream's workload + QoS contract for the endsystem DES.

    Attributes
    ----------
    sid:
        Stream / slot identifier.
    share:
        Relative bandwidth share (the 1:1:2:4 of Figures 8 and 10).
        Realized as an inversely-proportional DWCS request period.
    frame_bytes:
        Frame length (the runs use 1500-byte Ethernet frames).
    arrivals_us:
        Absolute arrival times of the frames (NumPy array).
    mode:
        Scheduling mode for the slot; fair-share by default.
    loss_numerator, loss_denominator:
        Window constraint for DWCS/fair-share slots.
    """

    sid: int
    share: float = 1.0
    frame_bytes: int = 1500
    arrivals_us: np.ndarray = field(
        default_factory=lambda: backlogged_arrivals(0)
    )
    mode: SchedulingMode = SchedulingMode.FAIR_SHARE
    loss_numerator: int = 1
    loss_denominator: int = 2

    def __post_init__(self) -> None:
        if self.share <= 0:
            raise ValueError("share must be positive")
        if self.frame_bytes <= 0:
            raise ValueError("frame_bytes must be positive")

    @property
    def n_frames(self) -> int:
        """Number of frames in the workload."""
        return len(self.arrivals_us)


def ratio_workload(
    ratios: tuple[float, ...] = (1, 1, 2, 4),
    *,
    frames_per_stream: int = 64_000,
    frame_bytes: int = 1500,
    arrivals_factory=backlogged_arrivals,
) -> list[EndsystemStreamSpec]:
    """Build the paper's ratio workload (default 1:1:2:4, 64000 frames).

    ``arrivals_factory(n)`` produces each stream's arrival times;
    the default is fully-backlogged sources (Figure 8's methodology).
    """
    specs = []
    for sid, share in enumerate(ratios):
        specs.append(
            EndsystemStreamSpec(
                sid=sid,
                share=float(share),
                frame_bytes=frame_bytes,
                arrivals_us=np.asarray(
                    arrivals_factory(frames_per_stream), dtype=np.float64
                ),
            )
        )
    return specs


def periods_for_shares(
    shares: list[float], *, granularity: int = 64
) -> list[int]:
    """Integer DWCS request periods realizing relative shares.

    Service share of stream ``i`` under deadline-driven service is
    proportional to ``1 / T_i``; this returns the smallest integer
    periods (bounded by ``granularity``) whose reciprocals are in the
    requested proportion.  E.g. shares (1, 1, 2, 4) -> periods
    (8, 8, 4, 2).
    """
    if any(s <= 0 for s in shares):
        raise ValueError("shares must be positive")
    fractions = [Fraction(s).limit_denominator(granularity) for s in shares]
    # T_i = lcm_numerator / share_i, scaled to integers.
    scale = max(fractions)
    periods = []
    for frac in fractions:
        period = scale / frac  # relative period, highest share -> 1
        periods.append(period)
    # Scale all periods to integers.
    denom_lcm = 1
    for p in periods:
        denom_lcm = denom_lcm * p.denominator // _gcd(denom_lcm, p.denominator)
    result = [int(p * denom_lcm) for p in periods]
    if max(result) > 4096:
        raise ValueError("share ratios too fine for integer periods")
    return result


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


__all__.append("periods_for_shares")
