"""Synthetic traffic generators (arrival-time producers).

The paper's endsystem evaluation feeds the system from a software
traffic generator: 64000 16-bit packet arrival times per queue for the
bandwidth runs (Figure 8), with "a multi-ms inter-burst delay after the
first 4000 frames" producing the zig-zag delay profile of Figure 9.

Generators here produce NumPy arrays of absolute arrival times in
microseconds — vectorized, deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cbr_arrivals",
    "burst_arrivals",
    "poisson_arrivals",
    "backlogged_arrivals",
]


def cbr_arrivals(
    n: int, rate_pps: float, *, start_us: float = 0.0
) -> np.ndarray:
    """Constant-bit-rate arrivals: ``n`` frames at ``rate_pps``."""
    if n < 0:
        raise ValueError("frame count must be non-negative")
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    return start_us + np.arange(n, dtype=np.float64) * (1e6 / rate_pps)


def burst_arrivals(
    n: int,
    *,
    burst_size: int,
    intra_rate_pps: float,
    inter_burst_gap_us: float,
    start_us: float = 0.0,
) -> np.ndarray:
    """Bursty arrivals: back-to-back bursts separated by long gaps.

    Frames arrive at ``intra_rate_pps`` within a burst of
    ``burst_size`` frames; each burst is followed by an
    ``inter_burst_gap_us`` pause (the paper's generator: multi-ms
    inter-burst delay after each 4000-frame burst).
    """
    if burst_size <= 0:
        raise ValueError("burst size must be positive")
    if inter_burst_gap_us < 0:
        raise ValueError("gap must be non-negative")
    base = cbr_arrivals(n, intra_rate_pps, start_us=start_us)
    burst_index = np.arange(n, dtype=np.float64) // burst_size
    return base + burst_index * inter_burst_gap_us


def poisson_arrivals(
    n: int,
    rate_pps: float,
    *,
    rng: np.random.Generator | int | None = None,
    start_us: float = 0.0,
) -> np.ndarray:
    """Poisson arrivals at mean ``rate_pps`` (exponential gaps)."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    gaps = rng.exponential(1e6 / rate_pps, size=n)
    return start_us + np.cumsum(gaps)


def backlogged_arrivals(n: int, *, start_us: float = 0.0) -> np.ndarray:
    """All frames queued up-front (fully backlogged source).

    Models the paper's bandwidth runs where all 64000 arrival times per
    queue are deposited before the clock starts ("We start the clock
    after 64000 packets from each stream are queued", Section 5.2).
    """
    if n < 0:
        raise ValueError("frame count must be non-negative")
    return np.full(n, start_us, dtype=np.float64)
