"""Measurement and reporting: bandwidth, delay, counters, rendering."""

from repro.metrics.bandwidth import BandwidthMeter, BandwidthSeries
from repro.metrics.delay import DelaySeries, DelayTracker
from repro.metrics.export import (
    write_bandwidth_csv,
    write_delay_csv,
    write_metrics,
    write_metrics_json,
    write_metrics_prometheus,
    write_rows_csv,
)
from repro.metrics.report import format_quantity, render_series, render_table

__all__ = [
    "BandwidthMeter",
    "BandwidthSeries",
    "DelaySeries",
    "DelayTracker",
    "format_quantity",
    "render_series",
    "render_table",
    "write_bandwidth_csv",
    "write_delay_csv",
    "write_metrics",
    "write_metrics_json",
    "write_metrics_prometheus",
    "write_rows_csv",
]
