"""Plain-text rendering of tables and series for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports; this module renders them uniformly (aligned ASCII
tables, compact numeric series) so `pytest benchmarks/ --benchmark-only`
output doubles as the reproduction record copied into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["render_table", "render_series", "format_quantity"]


def format_quantity(value: float, *, digits: int = 4) -> str:
    """Human-friendly formatting for mixed-magnitude numbers."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, np.integer)):
        return f"{int(value):,}"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6:
        return f"{value:,.0f}"
    if magnitude >= 1:
        return f"{value:,.{digits}g}"
    return f"{value:.{digits}g}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [
        [
            cell if isinstance(cell, str) else format_quantity(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    label: str,
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    max_points: int = 16,
    x_unit: str = "",
    y_unit: str = "",
) -> str:
    """Render a numeric series, down-sampled to ``max_points`` columns.

    Down-sampling averages within equal-width chunks so the printed
    series preserves the figure's shape (ramps, zig-zags, plateaus).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape:
        raise ValueError("x and y lengths differ")
    if len(xs) > max_points:
        chunks = np.array_split(np.arange(len(xs)), max_points)
        xs = np.array([xs[c].mean() for c in chunks])
        ys = np.array([ys[c].mean() for c in chunks])
    pairs = "  ".join(
        f"{format_quantity(float(x), digits=3)}:{format_quantity(float(y), digits=3)}"
        for x, y in zip(xs, ys)
    )
    units = f" [{x_unit} : {y_unit}]" if (x_unit or y_unit) else ""
    return f"{label}{units}  {pairs}"
