"""Export of experiment series and telemetry (figure data artifacts).

The benchmark harness prints tables; anyone re-plotting the figures
wants machine-readable data.  These helpers write the bandwidth/delay
series and generic row tables to CSV with stdlib ``csv`` only, plus
the observability registry in Prometheus text or JSON form.
"""

from __future__ import annotations

import csv
import warnings
from pathlib import Path
from typing import Iterable, Sequence

from repro.metrics.bandwidth import BandwidthSeries
from repro.metrics.delay import DelaySeries
from repro.observability.metrics import MetricsRegistry

__all__ = [
    "write_rows_csv",
    "write_bandwidth_csv",
    "write_delay_csv",
    "write_metrics",
    "write_metrics_json",
    "write_metrics_prometheus",
]


def write_rows_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write a generic table to CSV; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ValueError("row width does not match headers")
            writer.writerow(row)
    return path


def write_bandwidth_csv(
    path: str | Path, series: dict[int, BandwidthSeries]
) -> Path:
    """Write per-stream windowed bandwidth (Figure 8/10 data).

    Columns: window end time (us), then one MBps column per stream.
    All series must share the same window grid.
    """
    if not series:
        raise ValueError("no series to export")
    sids = sorted(series)
    grid = series[sids[0]].times_us
    for sid in sids[1:]:
        if len(series[sid].times_us) != len(grid):
            raise ValueError("series do not share a window grid")
    headers = ["t_end_us"] + [f"stream{sid}_mbps" for sid in sids]
    rows = [
        [float(grid[i])] + [float(series[sid].mbps[i]) for sid in sids]
        for i in range(len(grid))
    ]
    return write_rows_csv(path, headers, rows)


def write_delay_csv(path: str | Path, series: dict[int, DelaySeries]) -> Path:
    """Write per-frame delays, one row per (stream, frame) pair
    (Figure 9 data).  Columns: stream, departure time (us), delay (us).
    """
    if not series:
        raise ValueError("no series to export")
    rows = []
    for sid in sorted(series):
        s = series[sid]
        for t, d in zip(s.departures_us, s.delays_us):
            rows.append([sid, float(t), float(d)])
    return write_rows_csv(path, ["stream", "departure_us", "delay_us"], rows)


def write_metrics_prometheus(path: str | Path, registry: MetricsRegistry) -> Path:
    """Write a metrics registry in Prometheus text exposition format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(registry.to_prometheus_text())
    return path


def write_metrics_json(path: str | Path, registry: MetricsRegistry) -> Path:
    """Write a metrics registry as a canonical JSON snapshot."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(registry.to_json())
    return path


#: Suffixes recognized as explicit Prometheus-text requests; anything
#: else (bar ``.json``) still writes Prometheus text but warns, so a
#: typo like ``.jsno`` is not silently exported in the wrong format.
KNOWN_TEXT_SUFFIXES = frozenset({".prom", ".txt", ".prometheus", ".metrics"})


def write_metrics(path: str | Path, registry: MetricsRegistry) -> Path:
    """Write a metrics registry; format picked by suffix.

    ``.json`` gets the JSON snapshot, anything else the Prometheus
    text format (the ``.prom`` convention).  Unrecognized suffixes
    fall through to Prometheus text with a ``UserWarning``.
    """
    path = Path(path)
    if path.suffix == ".json":
        return write_metrics_json(path, registry)
    if path.suffix not in KNOWN_TEXT_SUFFIXES:
        warnings.warn(
            f"unrecognized metrics suffix {path.suffix!r} on {path.name!r}: "
            f"writing Prometheus text format (use .json for JSON, or one "
            f"of {sorted(KNOWN_TEXT_SUFFIXES)} to silence this warning)",
            UserWarning,
            stacklevel=2,
        )
    return write_metrics_prometheus(path, registry)
