"""Per-stream queuing-delay measurement (Figure 9).

Queuing delay = departure time − arrival time of each frame.  The
tracker stores raw pairs and reduces them to per-frame or windowed
series with NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DelaySeries", "DelayTracker"]


@dataclass(frozen=True, slots=True)
class DelaySeries:
    """Queuing delays of one stream, in frame order."""

    stream_id: int
    departures_us: np.ndarray
    delays_us: np.ndarray

    @property
    def mean_us(self) -> float:
        """Mean queuing delay."""
        return float(self.delays_us.mean()) if len(self.delays_us) else 0.0

    @property
    def max_us(self) -> float:
        """Worst-case queuing delay."""
        return float(self.delays_us.max()) if len(self.delays_us) else 0.0

    def percentile_us(self, q: float) -> float:
        """Delay percentile (q in [0, 100])."""
        if not len(self.delays_us):
            return 0.0
        return float(np.percentile(self.delays_us, q))

    @property
    def jitter_us(self) -> float:
        """Delay jitter: mean absolute delay difference between
        consecutive frames (RFC 3550-style inter-arrival jitter, the
        paper's third QoS bound alongside bandwidth and delay)."""
        if len(self.delays_us) < 2:
            return 0.0
        return float(np.abs(np.diff(self.delays_us)).mean())

    @property
    def peak_to_peak_jitter_us(self) -> float:
        """Worst-case delay variation (max - min delay)."""
        if not len(self.delays_us):
            return 0.0
        return float(self.delays_us.max() - self.delays_us.min())

    def smoothed(self, window: int) -> np.ndarray:
        """Moving average over ``window`` frames (plot smoothing)."""
        if window <= 1 or len(self.delays_us) < window:
            return self.delays_us
        kernel = np.ones(window) / window
        return np.convolve(self.delays_us, kernel, mode="valid")


class DelayTracker:
    """Accumulates (arrival, departure) pairs per stream."""

    def __init__(self) -> None:
        self._arrivals: dict[int, list[float]] = {}
        self._departures: dict[int, list[float]] = {}

    def record(self, stream_id: int, arrival_us: float, departure_us: float) -> None:
        """Record one frame's arrival and departure times."""
        if departure_us < arrival_us:
            raise ValueError("departure precedes arrival")
        self._arrivals.setdefault(stream_id, []).append(arrival_us)
        self._departures.setdefault(stream_id, []).append(departure_us)

    @property
    def stream_ids(self) -> list[int]:
        """Streams with at least one recorded frame."""
        return sorted(self._arrivals)

    def series(self, stream_id: int) -> DelaySeries:
        """Per-frame delay series for one stream."""
        arrivals = np.asarray(self._arrivals.get(stream_id, ()), dtype=np.float64)
        departures = np.asarray(
            self._departures.get(stream_id, ()), dtype=np.float64
        )
        return DelaySeries(
            stream_id=stream_id,
            departures_us=departures,
            delays_us=departures - arrivals,
        )
