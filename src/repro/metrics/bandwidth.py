"""Per-stream bandwidth measurement (Figures 8 and 10).

Records ``(time, bytes)`` departure samples per stream and reduces them
to windowed MBps series with vectorized NumPy binning — the experiment
runs produce hundreds of thousands of samples, so the reduction stays
out of Python loops (see the HPC guide: vectorize the hot path, keep
the recording path trivial).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BandwidthSeries", "BandwidthMeter"]


@dataclass(frozen=True, slots=True)
class BandwidthSeries:
    """Windowed bandwidth of one stream.

    ``times_us`` holds window-end times; ``mbps`` the mean bandwidth in
    megabytes/second over each window.
    """

    stream_id: int
    times_us: np.ndarray
    mbps: np.ndarray

    @property
    def mean_mbps(self) -> float:
        """Average bandwidth across all windows."""
        return float(self.mbps.mean()) if len(self.mbps) else 0.0


class BandwidthMeter:
    """Accumulates departure samples and bins them into MBps windows."""

    def __init__(self) -> None:
        self._times: dict[int, list[float]] = {}
        self._bytes: dict[int, list[int]] = {}

    def record(self, stream_id: int, time_us: float, length_bytes: int) -> None:
        """Record one frame departure."""
        self._times.setdefault(stream_id, []).append(time_us)
        self._bytes.setdefault(stream_id, []).append(length_bytes)

    @property
    def stream_ids(self) -> list[int]:
        """Streams with at least one sample."""
        return sorted(self._times)

    def total_bytes(self, stream_id: int) -> int:
        """Total bytes departed for one stream."""
        return sum(self._bytes.get(stream_id, ()))

    def series(
        self,
        stream_id: int,
        window_us: float,
        *,
        t_end: float | None = None,
    ) -> BandwidthSeries:
        """Windowed MBps series for one stream.

        Bytes are binned into consecutive ``window_us`` windows from
        t=0; empty trailing windows are kept up to ``t_end`` so
        co-plotted streams share an axis.
        """
        if window_us <= 0:
            raise ValueError("window must be positive")
        times = np.asarray(self._times.get(stream_id, ()), dtype=np.float64)
        sizes = np.asarray(self._bytes.get(stream_id, ()), dtype=np.float64)
        horizon = t_end if t_end is not None else (times.max() if len(times) else 0.0)
        n_windows = max(1, int(np.ceil(horizon / window_us)))
        edges = np.arange(n_windows + 1) * window_us
        binned, _ = np.histogram(times, bins=edges, weights=sizes)
        mbps = binned / window_us  # bytes/us == MB/s
        return BandwidthSeries(
            stream_id=stream_id,
            times_us=edges[1:],
            mbps=mbps,
        )

    def mean_mbps(self, stream_id: int, *, t_end: float) -> float:
        """Mean bandwidth over [0, t_end] for one stream."""
        if t_end <= 0:
            return 0.0
        return self.total_bytes(stream_id) / t_end

    def ratios(self, *, t_end: float, reference: int | None = None) -> dict[int, float]:
        """Bandwidth of each stream relative to the smallest (or a
        chosen reference stream) — the 1:1:2:4 check of Figure 8."""
        means = {
            sid: self.mean_mbps(sid, t_end=t_end) for sid in self.stream_ids
        }
        if not means:
            return {}
        if reference is None:
            base = min(v for v in means.values() if v > 0)
        else:
            base = means[reference]
        return {sid: v / base for sid, v in means.items()}

    def jain_index(
        self, *, t_end: float, weights: dict[int, float] | None = None
    ) -> float:
        """Jain's fairness index over (optionally weight-normalized)
        stream bandwidths: 1.0 = perfectly fair, 1/n = one stream hogs.

        With ``weights``, each stream's bandwidth is divided by its
        configured share first, so 1.0 means the weighted allocation
        (e.g. 1:1:2:4) was achieved exactly.
        """
        values = []
        for sid in self.stream_ids:
            x = self.mean_mbps(sid, t_end=t_end)
            if weights is not None:
                w = weights.get(sid, 1.0)
                if w <= 0:
                    raise ValueError("weights must be positive")
                x /= w
            values.append(x)
        if not values or not any(values):
            return 0.0
        arr = np.asarray(values)
        return float(arr.sum() ** 2 / (len(arr) * (arr**2).sum()))
