"""Versioned benchmark records + the continuous perf trajectory.

Every ``benchmarks/test_bench_*.py`` writer historically hand-rolled its
own JSON shape, so the repo accumulated ``BENCH_*.json`` files with no
machine-checkable trend: nothing could say whether the 37x batch
crossover or the O(1) churn latency still hold.  This module defines

* **one record format** — ``{"name", "value", "unit", "metadata"}`` —
  wrapped in a versioned payload
  ``{"schema": 1, "bench": <slug>, "workload": ..., "records": [...]}``
  (written canonically: sorted keys, ``indent=1``, trailing newline);
* **a normalizer** that lifts any legacy hand-rolled ``BENCH_*.json``
  into that format (numeric leaves flattened to dotted record names,
  units inferred from name suffixes, ``metadata.legacy = True``);
* **the trajectory** — ``BENCH_TRAJECTORY.json`` holds an append-only
  sequence of labeled snapshots, one per ``repro bench trend`` run, each
  bundling every bench file's normalized payload.  Identical consecutive
  snapshots are coalesced, so regenerating from unchanged inputs is a
  no-op and the file stays deterministic;
* **a regression check** — records may declare
  ``metadata.direction`` (``"higher"``/``"lower"`` is better) and
  ``metadata.tolerance`` (relative, default 0.25); ``check_regressions``
  compares the last two snapshots and names every metric that moved the
  wrong way beyond tolerance.

``benchmarks/_schema.py`` re-exports the writer surface for the bench
suite; the ``repro bench trend`` CLI drives discovery/append/validate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "BENCH_SCHEMA",
    "TRAJECTORY_SCHEMA",
    "DEFAULT_TOLERANCE",
    "bench_record",
    "bench_payload",
    "write_bench",
    "validate_bench",
    "normalize_payload",
    "load_bench_file",
    "discover_bench_files",
    "build_snapshot",
    "append_snapshot",
    "load_trajectory",
    "write_trajectory",
    "validate_trajectory",
    "check_regressions",
]

BENCH_SCHEMA = 1
TRAJECTORY_SCHEMA = 1
DEFAULT_TOLERANCE = 0.25

#: Record-name suffix -> unit, for normalizing legacy payloads.
_UNIT_SUFFIXES = (
    ("_per_second", "per_second"),
    ("_us", "us"),
    ("_ms", "ms"),
    ("_mb", "MB"),
    ("_ratio", "ratio"),
    ("_ops", "ops"),
    ("_bytes", "bytes"),
    ("_cycles", "cycles"),
)


def _canonical_text(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, indent=1) + "\n"


def bench_record(
    name: str, value: float, unit: str = "", **metadata: Any
) -> dict[str, Any]:
    """One measurement: a named numeric value with unit and context.

    ``metadata`` carries workload parameters (scenario counts, slot
    counts, bounds) plus the optional trend contract: ``direction``
    (``"higher"``/``"lower"`` is better) and ``tolerance`` (relative
    slack for :func:`check_regressions`).
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"record {name!r}: value must be numeric, got {value!r}")
    return {
        "name": str(name),
        "value": value,
        "unit": str(unit),
        "metadata": dict(metadata),
    }


def bench_payload(
    bench: str,
    records: Iterable[dict[str, Any]],
    *,
    workload: str | None = None,
) -> dict[str, Any]:
    """Wrap records in the versioned envelope (records name-sorted)."""
    rows = sorted(
        records,
        key=lambda r: (
            r["name"],
            json.dumps(r.get("metadata", {}), sort_keys=True),
        ),
    )
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "bench": str(bench),
        "records": rows,
    }
    if workload is not None:
        payload["workload"] = str(workload)
    problems = validate_bench(payload)
    if problems:
        raise ValueError(f"invalid bench payload: {problems}")
    return payload


def write_bench(
    path: str | Path,
    bench: str,
    records: Iterable[dict[str, Any]],
    *,
    workload: str | None = None,
) -> dict[str, Any]:
    """Build, validate and canonically write one bench payload.

    Refuses to overwrite an artifact written by a *newer* schema: an
    old checkout (or a stale CI runner) silently downgrading a
    committed ``BENCH_*.json`` would corrupt the trajectory history,
    so that case raises instead of writing.  Unreadable or
    non-JSON existing files are overwritten freely — they were never
    valid artifacts.
    """
    target = Path(path)
    payload = bench_payload(bench, records, workload=workload)
    try:
        existing = json.loads(target.read_text())
    except (OSError, ValueError):
        existing = None
    if isinstance(existing, dict):
        old_schema = existing.get("schema")
        if isinstance(old_schema, int) and old_schema > BENCH_SCHEMA:
            raise ValueError(
                f"{target} holds a schema-{old_schema} bench artifact; "
                f"refusing to overwrite it with schema {BENCH_SCHEMA} "
                "(update this checkout instead of downgrading the file)"
            )
    target.write_text(_canonical_text(payload))
    return payload


def validate_bench(payload: Any) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema must be {BENCH_SCHEMA}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("bench"), str) or not payload.get("bench"):
        problems.append("bench must be a non-empty string")
    if "workload" in payload and not isinstance(payload["workload"], str):
        problems.append("workload must be a string")
    records = payload.get("records")
    if not isinstance(records, list):
        return problems + ["records must be a list"]
    for i, rec in enumerate(records):
        where = f"records[{i}]"
        if not isinstance(rec, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(rec.get("name"), str) or not rec.get("name"):
            problems.append(f"{where}.name must be a non-empty string")
        value = rec.get("value")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            problems.append(f"{where}.value must be numeric, got {value!r}")
        if not isinstance(rec.get("unit", ""), str):
            problems.append(f"{where}.unit must be a string")
        meta = rec.get("metadata", {})
        if not isinstance(meta, dict):
            problems.append(f"{where}.metadata must be an object")
        else:
            direction = meta.get("direction")
            if direction not in (None, "higher", "lower"):
                problems.append(
                    f"{where}.metadata.direction must be 'higher' or 'lower'"
                )
        unexpected = set(rec) - {"name", "value", "unit", "metadata"}
        if unexpected:
            problems.append(f"{where} has unexpected keys {sorted(unexpected)}")
    return problems


def _infer_unit(name: str) -> str:
    for suffix, unit in _UNIT_SUFFIXES:
        if name.endswith(suffix):
            return unit
    return ""


def _flatten(prefix: str, node: Any, out: list[tuple[str, float]]) -> None:
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        out.append((prefix, node))
    elif isinstance(node, dict):
        for key in sorted(node):
            _flatten(f"{prefix}.{key}" if prefix else str(key), node[key], out)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            _flatten(f"{prefix}.{i}" if prefix else str(i), item, out)


def normalize_payload(payload: Any, *, bench: str) -> dict[str, Any]:
    """Lift any bench JSON into the schema-1 record format.

    Already-conforming payloads validate and pass through unchanged;
    legacy hand-rolled shapes are flattened (every numeric leaf becomes
    one record named by its dotted path, tagged ``legacy: True``), with
    a top-level ``unit``/``workload`` string honored when present.
    """
    if (
        isinstance(payload, dict)
        and payload.get("schema") == BENCH_SCHEMA
        and isinstance(payload.get("records"), list)
    ):
        problems = validate_bench(payload)
        if problems:
            raise ValueError(f"bench {bench!r}: invalid schema-1 payload: {problems}")
        return payload
    default_unit = ""
    workload = None
    node = payload
    if isinstance(payload, dict):
        node = dict(payload)
        if isinstance(node.get("unit"), str):
            default_unit = node.pop("unit")
        if isinstance(node.get("workload"), str):
            workload = node.pop("workload")
    leaves: list[tuple[str, float]] = []
    _flatten("", node, leaves)
    records = [
        bench_record(
            name, value, _infer_unit(name) or default_unit, legacy=True
        )
        for name, value in leaves
    ]
    return bench_payload(bench, records, workload=workload)


def bench_slug(path: str | Path) -> str:
    """``BENCH_CAMPAIGN.json -> campaign`` (the bench's trajectory key)."""
    stem = Path(path).stem
    if stem.upper().startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    return stem.lower()


def load_bench_file(path: str | Path) -> dict[str, Any]:
    """Read one ``BENCH_*.json`` file, normalized to schema 1."""
    path = Path(path)
    return normalize_payload(
        json.loads(path.read_text()), bench=bench_slug(path)
    )


def discover_bench_files(root: str | Path) -> list[Path]:
    """Every ``BENCH_*.json`` under ``root`` (the trajectory excluded)."""
    return sorted(
        p
        for p in Path(root).glob("BENCH_*.json")
        if p.name != "BENCH_TRAJECTORY.json"
    )


# -- the trajectory ----------------------------------------------------


def build_snapshot(
    root: str | Path, *, label: str = ""
) -> dict[str, Any]:
    """Normalize every bench file under ``root`` into one snapshot."""
    benches = {}
    for path in discover_bench_files(root):
        payload = load_bench_file(path)
        benches[payload["bench"]] = payload
    return {"label": str(label), "benches": benches}


def load_trajectory(path: str | Path) -> dict[str, Any]:
    path = Path(path)
    if not path.exists():
        return {"schema": TRAJECTORY_SCHEMA, "snapshots": []}
    trajectory = json.loads(path.read_text())
    problems = validate_trajectory(trajectory)
    if problems:
        raise ValueError(f"invalid trajectory {path}: {problems}")
    return trajectory


def write_trajectory(path: str | Path, trajectory: dict[str, Any]) -> None:
    Path(path).write_text(_canonical_text(trajectory))


def append_snapshot(
    trajectory: dict[str, Any], snapshot: dict[str, Any]
) -> bool:
    """Append a snapshot; returns False when it matches the last one.

    Coalescing identical consecutive snapshots keeps regeneration
    idempotent: re-running ``repro bench trend`` over unchanged bench
    files leaves the trajectory byte-identical.
    """
    snapshots = trajectory.setdefault("snapshots", [])
    if snapshots and snapshots[-1]["benches"] == snapshot["benches"]:
        return False
    sequence = snapshots[-1]["sequence"] + 1 if snapshots else 0
    snapshots.append(
        {
            "sequence": sequence,
            "label": snapshot.get("label", ""),
            "benches": snapshot["benches"],
        }
    )
    return True


def validate_trajectory(payload: Any) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"trajectory must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != TRAJECTORY_SCHEMA:
        problems.append(
            f"schema must be {TRAJECTORY_SCHEMA}, got {payload.get('schema')!r}"
        )
    snapshots = payload.get("snapshots")
    if not isinstance(snapshots, list):
        return problems + ["snapshots must be a list"]
    last_seq = -1
    for i, snap in enumerate(snapshots):
        where = f"snapshots[{i}]"
        if not isinstance(snap, dict):
            problems.append(f"{where} must be an object")
            continue
        seq = snap.get("sequence")
        if not isinstance(seq, int) or seq <= last_seq:
            problems.append(f"{where}.sequence must be an int > {last_seq}")
        else:
            last_seq = seq
        if not isinstance(snap.get("label", ""), str):
            problems.append(f"{where}.label must be a string")
        benches = snap.get("benches")
        if not isinstance(benches, dict):
            problems.append(f"{where}.benches must be an object")
            continue
        for bench, bench_pay in benches.items():
            for problem in validate_bench(bench_pay):
                problems.append(f"{where}.benches[{bench}]: {problem}")
            if isinstance(bench_pay, dict) and bench_pay.get("bench") != bench:
                problems.append(
                    f"{where}.benches[{bench}] names itself "
                    f"{bench_pay.get('bench')!r}"
                )
    return problems


def _indexed_records(snapshot: dict[str, Any]) -> dict[tuple, dict[str, Any]]:
    out = {}
    for bench, payload in snapshot.get("benches", {}).items():
        for rec in payload.get("records", []):
            meta = {
                k: v
                for k, v in rec.get("metadata", {}).items()
                if k not in ("direction", "tolerance")
            }
            key = (bench, rec["name"], json.dumps(meta, sort_keys=True))
            out[key] = rec
    return out


def check_regressions(trajectory: dict[str, Any]) -> list[str]:
    """Compare the last two snapshots; report direction-aware regressions.

    Only records carrying ``metadata.direction`` participate; a record
    regresses when it moves against its direction by more than
    ``metadata.tolerance`` (relative, default ``0.25``).  Returns
    human-readable problem strings (empty = no regressions).
    """
    snapshots = trajectory.get("snapshots", [])
    if len(snapshots) < 2:
        return []
    prev, last = _indexed_records(snapshots[-2]), _indexed_records(snapshots[-1])
    problems = []
    for key, rec in sorted(last.items()):
        direction = rec.get("metadata", {}).get("direction")
        if direction not in ("higher", "lower") or key not in prev:
            continue
        old = prev[key]["value"]
        new = rec["value"]
        if old == 0:
            continue
        tolerance = rec.get("metadata", {}).get("tolerance", DEFAULT_TOLERANCE)
        ratio = new / old
        if direction == "higher" and ratio < 1.0 - tolerance:
            problems.append(
                f"{key[0]}:{rec['name']} fell {old} -> {new} "
                f"(x{ratio:.3f}, tolerance {tolerance})"
            )
        elif direction == "lower" and ratio > 1.0 + tolerance:
            problems.append(
                f"{key[0]}:{rec['name']} rose {old} -> {new} "
                f"(x{ratio:.3f}, tolerance {tolerance})"
            )
    return problems
