"""Host-side (endsystem) cost model calibrated to Section 5.2.

The Endsystem/host-router realization reaches:

* **469,483 packets/second** excluding PCI transfer time (P-III
  550 MHz, Linux 2.4) — per-packet host cost of queue management,
  batching and playout bookkeeping;
* **299,065 packets/second** when PCI PIO transfer of arrival times
  and stream IDs is included;
* Click (P-III 700 MHz) forwards 333k pps plain / ~300k pps with SFQ;
  Qie et al. ~300k pps; router plug-ins (Pentium Pro, DRR) 28,279 pps.

From the two ShareStreams anchors we derive the per-packet host cost
and the incremental PIO cost; the endsystem DES charges exactly these.
The published comparator figures are carried as reference constants so
the Section 5.2 bench can print the full comparison table.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "HostCostModel",
    "PIII_550_LINUX24",
    "PUBLISHED_COMPARATORS",
]


@dataclass(frozen=True, slots=True)
class HostCostModel:
    """Per-packet host processing costs, in microseconds.

    ``packet_cost_us`` covers queue-manager and transmission-engine
    work per packet; ``pio_cost_us`` is the extra cost when arrival
    times / stream IDs move over PCI with programmed I/O (including the
    SRAM bank-ownership switch the paper identifies as the bottleneck).
    """

    name: str
    cpu_mhz: float
    packet_cost_us: float
    pio_cost_us: float

    def throughput_pps(self, *, include_pio: bool) -> float:
        """Packets per second the host path sustains."""
        cost = self.packet_cost_us + (self.pio_cost_us if include_pio else 0.0)
        return 1e6 / cost


def _calibrated_piii() -> HostCostModel:
    """Derive the P-III model from the paper's two throughput anchors."""
    no_pio_pps = 469_483.0
    pio_pps = 299_065.0
    packet_cost = 1e6 / no_pio_pps  # ~2.13 us
    pio_cost = 1e6 / pio_pps - packet_cost  # ~1.21 us
    return HostCostModel(
        name="Pentium III 550 MHz / Linux 2.4",
        cpu_mhz=550.0,
        packet_cost_us=packet_cost,
        pio_cost_us=pio_cost,
    )


#: The paper's endsystem host, calibrated from its own numbers.
PIII_550_LINUX24 = _calibrated_piii()

#: Published throughputs of the systems Section 5.2 compares against.
PUBLISHED_COMPARATORS: dict[str, float] = {
    "ShareStreams linecard (4 slots, Virtex-I)": 7_600_000.0,
    "ShareStreams endsystem (no PCI transfer)": 469_483.0,
    "ShareStreams endsystem (PCI PIO included)": 299_065.0,
    "Click modular router (700MHz P-III, plain)": 333_000.0,
    "Click modular router (SFQ module)": 300_000.0,
    "Qie et al. programmable router (450MHz P-II)": 300_000.0,
    "Router plug-ins (Pentium Pro, DRR, NetBSD)": 28_279.0,
}
