"""Slice-level area model of the scheduler core (Figure 7, left axis).

Section 5.1 reports the measured per-block areas of the Virtex-I
implementation:

* Control & Steering logic block — **22 slices**,
* Decision block — **190 slices**,
* Register Base block — **150 slices**,

plus shuffle-network wires and pass-through CLBs whose area "is
dependent on the stream-slot count of a given design"; the paper states
total area "grows linearly" with slots and that the BA (block) variant
"maintains almost the same area" as WR for all slot counts.

The model therefore sums the reported block costs and a per-slot
interconnect term, slightly larger for BA (routing winners *and*
losers).  The interconnect coefficients are the only fitted constants
and are chosen so a 32-slot design still places on a Virtex 1000 (the
paper: "easily scales from 4 to 32 stream-slots on a single chip").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import Routing
from repro.hwmodel.virtex import VIRTEX_1000, VirtexDevice

__all__ = [
    "CONTROL_SLICES",
    "DECISION_SLICES",
    "REGISTER_SLICES",
    "AreaBreakdown",
    "area_model",
]

#: Measured slice costs from Section 5.1.
CONTROL_SLICES = 22
DECISION_SLICES = 190
REGISTER_SLICES = 150

#: Area multiplier for compute-ahead Register Base blocks (Section 6):
#: predication duplicates the attribute-adjustment datapath (winner and
#: loser next-states computed speculatively) plus a select mux.  The
#: adjustment logic is roughly half the register block, so ~1.45x.
COMPUTE_AHEAD_REGISTER_FACTOR = 1.45

#: Fitted per-slot interconnect (shuffle wires + pass-through CLBs).
_INTERCONNECT_SLICES_PER_SLOT = {
    Routing.BA: 42.0,  # winners and losers routed
    Routing.WR: 30.0,  # winner-only routing eases the spread
}


@dataclass(frozen=True, slots=True)
class AreaBreakdown:
    """Slice budget of one scheduler design point."""

    n_slots: int
    routing: Routing
    control_slices: int
    decision_slices: int
    register_slices: int
    interconnect_slices: float
    device: VirtexDevice

    @property
    def total_slices(self) -> float:
        """Total design area in slices."""
        return (
            self.control_slices
            + self.decision_slices
            + self.register_slices
            + self.interconnect_slices
        )

    @property
    def total_clbs(self) -> float:
        """Total area in CLBs (Figure 7 plots CLBs on Virtex-I)."""
        return self.total_slices / self.device.slices_per_clb

    @property
    def utilization(self) -> float:
        """Fraction of the device consumed."""
        return self.device.utilization(self.total_slices)

    @property
    def fits(self) -> bool:
        """Whether the design places on the device."""
        return self.device.fits(self.total_slices)


def area_model(
    n_slots: int,
    routing: Routing = Routing.BA,
    device: VirtexDevice = VIRTEX_1000,
    *,
    compute_ahead: bool = False,
) -> AreaBreakdown:
    """Area of an ``n_slots`` scheduler in the given routing variant.

    Linear in the slot count by construction — N register blocks, N/2
    decision blocks, one control block, and per-slot interconnect —
    matching the paper's "architecture grows linearly, in terms of
    area" for both BA and WR.  ``compute_ahead`` prices the Section 6
    predicated register blocks.
    """
    if n_slots < 2 or n_slots % 2:
        raise ValueError(f"n_slots must be an even count >= 2, got {n_slots}")
    register = n_slots * REGISTER_SLICES
    if compute_ahead:
        register = round(register * COMPUTE_AHEAD_REGISTER_FACTOR)
    return AreaBreakdown(
        n_slots=n_slots,
        routing=routing,
        control_slices=CONTROL_SLICES,
        decision_slices=(n_slots // 2) * DECISION_SLICES,
        register_slices=register,
        interconnect_slices=n_slots * _INTERCONNECT_SLICES_PER_SLOT[routing],
        device=device,
    )
