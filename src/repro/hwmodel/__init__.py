"""Calibrated Virtex FPGA area / clock / throughput models."""

from repro.hwmodel.area import (
    CONTROL_SLICES,
    DECISION_SLICES,
    REGISTER_SLICES,
    AreaBreakdown,
    area_model,
)
from repro.hwmodel.host import (
    PIII_550_LINUX24,
    PUBLISHED_COMPARATORS,
    HostCostModel,
)
from repro.hwmodel.scaling import ScalingPlan, provision
from repro.hwmodel.timing import (
    DECISION_OVERHEAD_CYCLES,
    ThroughputPoint,
    clock_rate_mhz,
    decision_cycles,
    decision_time_us,
    scheduler_throughput_pps,
)
from repro.hwmodel.virtex import DEVICES, VIRTEX_1000, VIRTEX_II_6000, VirtexDevice

__all__ = [
    "AreaBreakdown",
    "CONTROL_SLICES",
    "DECISION_OVERHEAD_CYCLES",
    "DECISION_SLICES",
    "DEVICES",
    "HostCostModel",
    "PIII_550_LINUX24",
    "PUBLISHED_COMPARATORS",
    "REGISTER_SLICES",
    "ScalingPlan",
    "ThroughputPoint",
    "VIRTEX_1000",
    "VIRTEX_II_6000",
    "VirtexDevice",
    "area_model",
    "clock_rate_mhz",
    "decision_cycles",
    "decision_time_us",
    "provision",
    "scheduler_throughput_pps",
]
