"""Clock-rate and throughput models (Figure 7 right axis, Section 5.2).

We cannot place-and-route a Virtex-I design here, so achievable clock
rates are carried as *calibrated anchors* derived from the statements
the paper itself makes (DESIGN.md, "Calibration constants"):

* the Celoxica card clocks designs "up to 100 MHz";
* the WR (winner-only) variant "shows lesser clock-rate variation from
  4 to 32 stream-slots than the BA architecture";
* BA's clock-rate degradation versus WR is "close to 20%" at 8 and 16
  slots and "only 10%" at 32 slots;
* the 4-slot line-card configuration schedules **7.6 million
  packets/second**.

The decision latency is architectural, not fitted: ``log2(N)`` network
passes + 1 PRIORITY_UPDATE cycle + a fixed memory/steering overhead per
decision.  The overhead constant and the 4-slot WR clock are jointly
anchored to the published 7.6 Mpps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import Routing
from repro.hwmodel.virtex import VIRTEX_1000, VirtexDevice

__all__ = [
    "DECISION_OVERHEAD_CYCLES",
    "clock_rate_mhz",
    "decision_cycles",
    "decision_time_us",
    "scheduler_throughput_pps",
    "ThroughputPoint",
]

#: Fixed per-decision overhead: SRAM-interface handshake + register
#: load steering, in hardware cycles.  Anchored (with the 4-slot WR
#: clock) to the paper's 7.6 Mpps line-card figure:
#: 68.4 MHz / (2 + 1 + 6) cycles = 7.6 Mpps.
DECISION_OVERHEAD_CYCLES = 6

#: Calibrated post-route clock anchors (MHz) per stream-slot count.
#: WR declines gently (compact winner-only routing); BA pays the
#: winner+loser interconnect: ~8% at 4 slots, ~20% at 8/16, ~10% at 32
#: (the paper's stated degradations).
_WR_CLOCK_MHZ = {4: 68.4, 8: 66.0, 16: 62.0, 32: 58.0}
_BA_DEGRADATION = {4: 0.08, 8: 0.20, 16: 0.20, 32: 0.10}


def _interpolate(table: dict[int, float], n_slots: int) -> float:
    """Log-linear interpolation between anchored slot counts."""
    if n_slots in table:
        return table[n_slots]
    keys = sorted(table)
    if n_slots < keys[0]:
        return table[keys[0]]
    if n_slots > keys[-1]:
        return table[keys[-1]]
    lo = max(k for k in keys if k < n_slots)
    hi = min(k for k in keys if k > n_slots)
    frac = (math.log2(n_slots) - math.log2(lo)) / (
        math.log2(hi) - math.log2(lo)
    )
    return table[lo] + frac * (table[hi] - table[lo])


def clock_rate_mhz(
    n_slots: int,
    routing: Routing = Routing.BA,
    device: VirtexDevice = VIRTEX_1000,
) -> float:
    """Achievable post-route clock for a design point (Figure 7).

    Anchors are Virtex-I; other devices scale by their card clock
    ceiling relative to the Virtex-I's 100 MHz — the Section 6
    direction of moving the decision products onto Virtex-II hard
    multipliers and its higher fabric clock.
    """
    if n_slots < 2:
        raise ValueError("n_slots must be >= 2")
    wr = _interpolate(_WR_CLOCK_MHZ, n_slots)
    if routing is not Routing.WR:
        wr *= 1.0 - _interpolate(_BA_DEGRADATION, n_slots)
    return wr * device.max_clock_mhz / VIRTEX_1000.max_clock_mhz


def decision_cycles(
    n_slots: int, *, schedule: str = "paper", compute_ahead: bool = False
) -> int:
    """Hardware cycles per decision: sort passes + update + overhead.

    The paper: "2, 3, 4, 5 cycles required to sort 4, 8, 16 and 32
    stream-slots" — the ``log2(N)`` term — plus one PRIORITY_UPDATE
    cycle and the fixed memory/steering overhead.  The Section 6
    *compute-ahead* extension hides the update cycle behind the last
    sort pass (speculative winner/loser next-states selected by the
    circulated ID).
    """
    k = max(1, (n_slots - 1).bit_length())
    if schedule == "bitonic":
        sort = k * (k + 1) // 2
    elif schedule == "paper":
        sort = k
    else:
        raise ValueError(f"unknown schedule {schedule!r}")
    update = 0 if compute_ahead else 1
    return sort + update + DECISION_OVERHEAD_CYCLES


def decision_time_us(
    n_slots: int,
    routing: Routing = Routing.BA,
    *,
    schedule: str = "paper",
) -> float:
    """Wall time of one decision cycle, in microseconds."""
    return decision_cycles(n_slots, schedule=schedule) / clock_rate_mhz(
        n_slots, routing
    )


@dataclass(frozen=True, slots=True)
class ThroughputPoint:
    """Scheduler throughput at one design point."""

    n_slots: int
    routing: Routing
    clock_mhz: float
    cycles_per_decision: int
    packets_per_decision: int

    @property
    def packets_per_second(self) -> float:
        """Scheduled packets per second."""
        return (
            self.clock_mhz
            * 1e6
            / self.cycles_per_decision
            * self.packets_per_decision
        )


def scheduler_throughput_pps(
    n_slots: int,
    routing: Routing = Routing.WR,
    *,
    block: bool = False,
    schedule: str = "paper",
    compute_ahead: bool = False,
    device: VirtexDevice = VIRTEX_1000,
) -> ThroughputPoint:
    """Raw scheduler throughput (no host/PCI software overhead).

    ``block=True`` models block scheduling: the whole sorted block
    (``n_slots`` packets) is emitted per decision cycle, the factor-of-
    block-size throughput gain Section 5.1 describes.  ``block`` is
    only meaningful with BA routing.  ``compute_ahead`` and ``device``
    price the Section 6 extensions (hidden update cycle; Virtex-II).
    """
    if block and routing is Routing.WR:
        raise ValueError("block emission requires BA routing")
    return ThroughputPoint(
        n_slots=n_slots,
        routing=routing,
        clock_mhz=clock_rate_mhz(n_slots, routing, device),
        cycles_per_decision=decision_cycles(
            n_slots, schedule=schedule, compute_ahead=compute_ahead
        ),
        packets_per_decision=n_slots if block else 1,
    )
