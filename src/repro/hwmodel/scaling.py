"""Scaling model: from one chip to backbone stream counts.

Section 4.2: "The line-card realization is critical for operation in a
network backbone where thousands of streams are switched and routed by
network hardware."  A single chip holds at most 32 stream-slots (the
5-bit ID field); scale beyond that comes from two directions the paper
provides:

* **aggregation** — up to hundreds of streamlets per slot (coarser QoS);
* **replication** — multiple scheduler instances (one per line-card
  port, or multiple cores on a larger device).

This module answers the provisioning question: given a stream
population with a required fraction of *per-stream* QoS streams (which
must own slots) and an aggregation degree for the rest, how many slots,
chips and slices are needed — and what does Figure 1's scheduling-rate
axis say about the per-chip decision load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import Routing
from repro.core.fields import MAX_STREAM_SLOTS
from repro.hwmodel.area import area_model
from repro.hwmodel.timing import clock_rate_mhz, decision_cycles
from repro.hwmodel.virtex import VIRTEX_1000, VirtexDevice

__all__ = ["ScalingPlan", "provision"]


@dataclass(frozen=True, slots=True)
class ScalingPlan:
    """Provisioning result for a stream population."""

    total_streams: int
    qos_streams: int
    aggregated_streams: int
    aggregation_degree: int
    slots_needed: int
    slots_per_chip: int
    chips: int
    slices_per_chip: float
    utilization_per_chip: float
    decisions_per_second_per_chip: float

    @property
    def streams_per_chip(self) -> float:
        """Average stream count carried per chip."""
        return self.total_streams / self.chips if self.chips else 0.0


def provision(
    total_streams: int,
    *,
    per_stream_qos_fraction: float = 0.1,
    aggregation_degree: int = 100,
    device: VirtexDevice = VIRTEX_1000,
    routing: Routing = Routing.WR,
) -> ScalingPlan:
    """Provision chips for a stream population.

    Parameters
    ----------
    total_streams:
        Streams to carry (e.g. a backbone line-card's flow count).
    per_stream_qos_fraction:
        Fraction requiring individual QoS (a dedicated slot each).
    aggregation_degree:
        Streamlets multiplexed onto each remaining slot.
    """
    if total_streams <= 0:
        raise ValueError("need at least one stream")
    if not 0 <= per_stream_qos_fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    if aggregation_degree <= 0:
        raise ValueError("aggregation degree must be positive")

    qos_streams = math.ceil(total_streams * per_stream_qos_fraction)
    aggregated = total_streams - qos_streams
    slots_needed = qos_streams + math.ceil(aggregated / aggregation_degree)

    # Largest power-of-two slot count that places on the device.
    slots_per_chip = 2
    while slots_per_chip * 2 <= MAX_STREAM_SLOTS and area_model(
        slots_per_chip * 2, routing, device
    ).fits:
        slots_per_chip *= 2

    chips = math.ceil(slots_needed / slots_per_chip)
    area = area_model(slots_per_chip, routing, device)
    clock = clock_rate_mhz(slots_per_chip, routing, device)
    dps = clock * 1e6 / decision_cycles(slots_per_chip)
    return ScalingPlan(
        total_streams=total_streams,
        qos_streams=qos_streams,
        aggregated_streams=aggregated,
        aggregation_degree=aggregation_degree,
        slots_needed=slots_needed,
        slots_per_chip=slots_per_chip,
        chips=chips,
        slices_per_chip=area.total_slices,
        utilization_per_chip=area.utilization,
        decisions_per_second_per_chip=dps,
    )
