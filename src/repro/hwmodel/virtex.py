"""Xilinx Virtex device catalog used by the area/timing models.

The paper's prototype runs on a Celoxica RC1000 PCI card carrying a
Xilinx **Virtex 1000**: "A Virtex 1000 part has an equivalent of
1 million system gates with 64 x 96 Virtex I CLBs (2 Virtex I slices =
1 Virtex I CLB).  A slice includes LUTs and flip-flops and is the basic
logic element." (Section 5.1.)  Virtex-II entries cover the future-work
discussion (hard multipliers, immersed PowerPC cores).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VirtexDevice", "VIRTEX_1000", "VIRTEX_II_6000", "DEVICES"]


@dataclass(frozen=True, slots=True)
class VirtexDevice:
    """One FPGA part: logic capacity and card-level clock ceiling."""

    name: str
    family: str
    clb_rows: int
    clb_cols: int
    slices_per_clb: int
    system_gates: int
    max_clock_mhz: float

    @property
    def clbs(self) -> int:
        """Total configurable logic blocks."""
        return self.clb_rows * self.clb_cols

    @property
    def slices(self) -> int:
        """Total slices (the basic logic element the area model counts)."""
        return self.clbs * self.slices_per_clb

    def utilization(self, used_slices: float) -> float:
        """Fraction of the device's slices a design consumes."""
        if used_slices < 0:
            raise ValueError("used_slices must be non-negative")
        return used_slices / self.slices

    def fits(self, used_slices: float, *, max_utilization: float = 0.9) -> bool:
        """Whether a design places at a routable utilization level.

        FPGA designs become unroutable well before 100% utilization;
        0.9 is a conventional placement ceiling.
        """
        return self.utilization(used_slices) <= max_utilization


#: The paper's prototype device (Celoxica RC1000 card).
VIRTEX_1000 = VirtexDevice(
    name="XCV1000",
    family="Virtex-I",
    clb_rows=64,
    clb_cols=96,
    slices_per_clb=2,
    system_gates=1_000_000,
    max_clock_mhz=100.0,
)

#: Future-work target (Section 6: hard multipliers, higher clock).
VIRTEX_II_6000 = VirtexDevice(
    name="XC2V6000",
    family="Virtex-II",
    clb_rows=96,
    clb_cols=88,
    slices_per_clb=4,
    system_gates=6_000_000,
    max_clock_mhz=200.0,
)

DEVICES: dict[str, VirtexDevice] = {
    VIRTEX_1000.name: VIRTEX_1000,
    VIRTEX_II_6000.name: VIRTEX_II_6000,
}
