"""Network link and transmission port models.

Packet-time — length(bits) / line-speed(bps) — is the paper's central
performance yardstick: "Scheduling disciplines must be able to make a
decision within a packet-time to maintain high link utilization"
(Section 1).  :class:`Link` provides those figures; :class:`TxPort`
couples a link to the DES engine as a serially-busy transmitter the
Transmission Engine pushes scheduled frames into (the NI with DMA pulls
of Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.engine import Simulator

__all__ = ["Link", "TxPort", "GIGABIT", "TEN_GIGABIT"]


@dataclass(frozen=True, slots=True)
class Link:
    """An output link of a given line rate."""

    name: str
    rate_bps: float

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("link rate must be positive")

    def packet_time_us(self, length_bytes: int) -> float:
        """Serialization time of one frame, in microseconds."""
        if length_bytes <= 0:
            raise ValueError("frame length must be positive")
        return length_bytes * 8 / self.rate_bps * 1e6

    def packets_per_second(self, length_bytes: int) -> float:
        """Line-rate frame throughput for a fixed frame size."""
        return 1e6 / self.packet_time_us(length_bytes)


GIGABIT = Link("1GbE", 1e9)
TEN_GIGABIT = Link("10GbE", 1e10)


class TxPort:
    """Serially-busy transmitter bound to a simulator and a link.

    ``transmit`` queues a frame for the wire; frames serialize one at a
    time in submission order.  An optional completion callback receives
    ``(frame, finish_time)`` — the delay metrics hook in there.
    """

    def __init__(self, sim: Simulator, link: Link) -> None:
        self.sim = sim
        self.link = link
        self.busy_until = 0.0
        self.frames_sent = 0
        self.bytes_sent = 0

    def transmit(
        self,
        frame: Any,
        length_bytes: int,
        on_done: Callable[[Any, float], None] | None = None,
    ) -> float:
        """Enqueue one frame on the wire; returns its finish time."""
        start = max(self.sim.now, self.busy_until)
        finish = start + self.link.packet_time_us(length_bytes)
        self.busy_until = finish
        self.frames_sent += 1
        self.bytes_sent += length_bytes
        if on_done is not None:
            self.sim.schedule_at(finish, on_done, frame, finish)
        return finish

    @property
    def utilization_until_now(self) -> float:
        """Fraction of elapsed time the wire has carried bits."""
        if self.sim.now <= 0:
            return 0.0
        busy_us = self.bytes_sent * 8 / self.link.rate_bps * 1e6
        return min(1.0, busy_us / self.sim.now)
