"""PCI bus transfer model: PIO pushes and DMA pulls.

Section 4.3: "For small transfers, the Stream processor can push
arrival-times to the FPGA PCI card [PIO].  For bulk-transfers, the
Stream processor will set the DMA engine registers and assert the
pull-start line" — batched transfers ride the PCI burst bandwidth.

The card is 32-bit/33 MHz PCI (Section 4.3), i.e. 132 MB/s theoretical
burst.  PIO moves one word per bus transaction with fixed per-
transaction overhead (uncached I/O reads/writes on a P-III are roughly
a microsecond each across a bridge); DMA pays a setup cost once, then
streams at a fraction of the burst bandwidth.  Defaults reproduce the
paper's measured PIO-vs-none endsystem throughput gap via the
calibrated :data:`repro.hwmodel.host.PIII_550_LINUX24` costs; the
constants here are exposed so the transfer-policy ablation can sweep
them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PCIConfig", "PCIBus", "TransferRecord"]


@dataclass(frozen=True, slots=True)
class PCIConfig:
    """Timing parameters of the PCI path.

    Attributes
    ----------
    pio_word_cost_us:
        Per-word programmed-I/O cost (bus transaction + bridge
        latency).
    dma_setup_cost_us:
        Fixed cost to program the card's DMA engine registers and
        assert *pull-start*.
    burst_bandwidth_mbps:
        Effective DMA burst bandwidth in megabytes/second (theoretical
        peak for 32-bit/33 MHz PCI is 132 MB/s; sustained is lower).
    """

    pio_word_cost_us: float = 0.60
    dma_setup_cost_us: float = 2.0
    burst_bandwidth_mbps: float = 90.0

    def __post_init__(self) -> None:
        if min(
            self.pio_word_cost_us,
            self.dma_setup_cost_us,
            self.burst_bandwidth_mbps,
        ) < 0 or self.burst_bandwidth_mbps == 0:
            raise ValueError("PCI timing parameters must be positive")


@dataclass(frozen=True, slots=True)
class TransferRecord:
    """Accounting record of one completed transfer."""

    mode: str  # "pio" | "dma"
    words: int
    time_us: float


class PCIBus:
    """Transfer-time calculator and accountant for the PCI path.

    Word size is 4 bytes (32-bit bus); 16-bit arrival-time offsets are
    packed two per word, which :meth:`push_arrival_times` accounts for.
    """

    WORD_BYTES = 4

    def __init__(self, config: PCIConfig | None = None) -> None:
        self.config = config or PCIConfig()
        self.transfers: list[TransferRecord] = []
        self.total_time_us = 0.0
        self.total_words = 0

    # ------------------------------------------------------------------

    def pio_time_us(self, words: int) -> float:
        """Time to move ``words`` by programmed I/O."""
        if words < 0:
            raise ValueError("word count must be non-negative")
        return words * self.config.pio_word_cost_us

    def dma_time_us(self, words: int) -> float:
        """Time to move ``words`` by one DMA burst (setup + streaming)."""
        if words < 0:
            raise ValueError("word count must be non-negative")
        if words == 0:
            return 0.0
        bytes_moved = words * self.WORD_BYTES
        stream_us = bytes_moved / self.config.burst_bandwidth_mbps
        return self.config.dma_setup_cost_us + stream_us

    def best_mode(self, words: int) -> str:
        """Cheaper mode for a transfer of ``words`` (the push/pull split)."""
        return "pio" if self.pio_time_us(words) <= self.dma_time_us(words) else "dma"

    # ------------------------------------------------------------------

    def transfer(self, words: int, mode: str = "auto") -> float:
        """Execute (account) one transfer; returns its duration in us."""
        if mode == "auto":
            mode = self.best_mode(words)
        if mode == "pio":
            time_us = self.pio_time_us(words)
        elif mode == "dma":
            time_us = self.dma_time_us(words)
        else:
            raise ValueError(f"unknown transfer mode {mode!r}")
        self.transfers.append(TransferRecord(mode, words, time_us))
        self.total_time_us += time_us
        self.total_words += words
        return time_us

    def push_arrival_times(self, count: int, mode: str = "auto") -> float:
        """Move ``count`` 16-bit arrival-time offsets (2 per word)."""
        words = (count + 1) // 2
        return self.transfer(words, mode)

    def read_stream_ids(self, count: int, mode: str = "auto") -> float:
        """Move ``count`` scheduled stream IDs back to the host.

        IDs are 5-bit values; the host reads them packed four per word
        (byte-aligned) as the paper's QM threads do.
        """
        words = (count + 3) // 4
        return self.transfer(words, mode)
