"""Synchronization-free single-producer/single-consumer circular queues.

"ShareStreams' per-stream queues are circular buffers with separate
read and write pointers for concurrent access, without any
synchronization needs.  This allows a producer to populate the
per-stream queues, while the Transmission Engine may concurrently
transfer scheduled frames to the network." (Section 4.2.)

Two variants:

* :class:`CircularQueue` — generic object ring (packets, descriptors);
* :class:`ArrivalRing` — NumPy-backed ring of 16-bit arrival-time
  offsets (the exact payload the stream processor pushes to the FPGA
  card), with vectorized batch push/pop so the streaming unit's bulk
  PCI transfers stay out of Python-level loops.

Both use monotonically increasing read/write counters masked by a
power-of-two capacity — the lock-free SPSC idiom the paper's design
relies on (a producer only advances the write pointer, a consumer only
the read pointer).
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

__all__ = ["CircularQueue", "ArrivalRing"]


def _round_up_pow2(n: int) -> int:
    if n <= 0:
        raise ValueError("capacity must be positive")
    return 1 << (n - 1).bit_length()


class CircularQueue:
    """Bounded SPSC ring of Python objects.

    ``capacity`` rounds up to a power of two so index masking replaces
    modulo.  ``push`` returns ``False`` when full (the producer must
    back off — there is no blocking, matching the hardware queues).
    """

    __slots__ = ("_buf", "_mask", "_read", "_write")

    def __init__(self, capacity: int) -> None:
        cap = _round_up_pow2(capacity)
        self._buf: list[Any] = [None] * cap
        self._mask = cap - 1
        self._read = 0
        self._write = 0

    @property
    def capacity(self) -> int:
        """Usable slots in the ring."""
        return self._mask + 1

    def __len__(self) -> int:
        return self._write - self._read

    @property
    def free(self) -> int:
        """Slots available to the producer."""
        return self.capacity - len(self)

    @property
    def full(self) -> bool:
        """Whether a push would fail."""
        return len(self) == self.capacity

    def push(self, item: Any) -> bool:
        """Producer side: append one item; False when the ring is full."""
        if self.full:
            return False
        self._buf[self._write & self._mask] = item
        self._write += 1
        return True

    def pop(self) -> Any | None:
        """Consumer side: remove the oldest item; None when empty."""
        if self._read == self._write:
            return None
        item = self._buf[self._read & self._mask]
        self._buf[self._read & self._mask] = None  # drop the reference
        self._read += 1
        return item

    def peek(self) -> Any | None:
        """The oldest item without removing it."""
        if self._read == self._write:
            return None
        return self._buf[self._read & self._mask]

    def extend(self, items: Iterable[Any]) -> int:
        """Push items until the ring fills; returns how many went in."""
        pushed = 0
        for item in items:
            if not self.push(item):
                break
            pushed += 1
        return pushed


class ArrivalRing:
    """NumPy-backed ring of 16-bit arrival-time offsets.

    Models the card-SRAM per-stream queues holding the 16-bit
    arrival-time offsets the stream processor transfers (Figure 3 /
    Section 5.1: "we transferred 64000 16-bit packet arrival times from
    each of the four queues").  Batch operations are vectorized.
    """

    __slots__ = ("_buf", "_mask", "_read", "_write")

    def __init__(self, capacity: int) -> None:
        cap = _round_up_pow2(capacity)
        self._buf = np.zeros(cap, dtype=np.uint16)
        self._mask = cap - 1
        self._read = 0
        self._write = 0

    @property
    def capacity(self) -> int:
        """Usable slots in the ring."""
        return self._mask + 1

    def __len__(self) -> int:
        return self._write - self._read

    @property
    def free(self) -> int:
        """Slots available to the producer."""
        return self.capacity - len(self)

    def push_batch(self, values: np.ndarray) -> int:
        """Append up to ``len(values)`` offsets; returns the count taken.

        Wraps around the ring boundary with at most two slice copies —
        no per-element Python work.
        """
        values = np.asarray(values, dtype=np.uint16)
        n = min(len(values), self.free)
        if n == 0:
            return 0
        start = self._write & self._mask
        first = min(n, self.capacity - start)
        self._buf[start : start + first] = values[:first]
        if n > first:
            self._buf[: n - first] = values[first:n]
        self._write += n
        return n

    def pop_batch(self, n: int) -> np.ndarray:
        """Remove and return up to ``n`` oldest offsets (vectorized)."""
        n = min(n, len(self))
        if n <= 0:
            return np.empty(0, dtype=np.uint16)
        start = self._read & self._mask
        first = min(n, self.capacity - start)
        if n <= first:
            out = self._buf[start : start + n].copy()
        else:
            out = np.concatenate(
                (self._buf[start:], self._buf[: n - first])
            )
        self._read += n
        return out

    def push(self, value: int) -> bool:
        """Single-offset convenience push."""
        if self.free == 0:
            return False
        self._buf[self._write & self._mask] = value
        self._write += 1
        return True

    def pop(self) -> int | None:
        """Single-offset convenience pop."""
        if self._read == self._write:
            return None
        value = int(self._buf[self._read & self._mask])
        self._read += 1
        return value

    def peek(self) -> int | None:
        """The oldest offset without removing it."""
        if self._read == self._write:
            return None
        return int(self._buf[self._read & self._mask])
