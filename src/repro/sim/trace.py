"""Backward-compatible re-export of the absorbed trace log.

The structured event tracing that used to live here is now part of the
unified observability layer (``repro.observability``): the
category-tagged :class:`TraceLog` moved to
:mod:`repro.observability.tracelog`, and the engine-emitted structured
decision trace lives in :mod:`repro.observability.events`.  This module
keeps the historical import path working.
"""

from __future__ import annotations

from repro.observability.tracelog import TraceEvent, TraceLog

__all__ = ["TraceEvent", "TraceLog"]
