"""Deprecated re-export of the absorbed trace log.

The structured event tracing that used to live here is now part of the
unified observability layer (``repro.observability``): the
category-tagged :class:`TraceLog` moved to
:mod:`repro.observability.tracelog`, and the engine-emitted structured
decision trace lives in :mod:`repro.observability.events`.  This module
keeps the historical import path working but warns on import; migrate
to ``repro.observability.tracelog``.
"""

from __future__ import annotations

import warnings

from repro.observability.tracelog import TraceEvent, TraceLog

warnings.warn(
    "repro.sim.trace is deprecated; import TraceEvent/TraceLog from "
    "repro.observability.tracelog (or repro.observability) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["TraceEvent", "TraceLog"]
