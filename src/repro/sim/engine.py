"""Minimal discrete-event simulation engine.

The endsystem and line-card realizations are concurrent systems — a
queue manager filling per-stream queues, a streaming unit batching
arrival times over PCI, the FPGA scheduler making decisions, and
transmission-engine threads draining scheduled streams to the network
(Figure 3).  This engine provides the event loop they share: a
time-ordered heap of callbacks with deterministic FIFO ordering among
simultaneous events.

Kept deliberately small (schedule / cancel / run) per the profiling
guidance: the hot paths of the experiments are the vectorized metric
computations, not the event loop.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """One scheduled callback; orderable by (time, sequence)."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (lazy removal from the heap)."""
        self.cancelled = True


class Simulator:
    """Event-driven simulation clock.

    Time units are whatever the caller adopts consistently; the
    endsystem experiments use microseconds.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._events_run = 0

    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_run(self) -> int:
        """Total events executed so far."""
        return self._events_run

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next event.  Returns False when nothing is queued."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_run += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self, until: float | None = None, *, max_events: int | None = None
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event lies past this time (the clock is
            then advanced to ``until``).
        max_events:
            Safety valve against runaway feedback loops.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}"
                )
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            executed += 1
        if until is not None and self.now < until:
            self.now = until
