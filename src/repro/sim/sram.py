"""Banked SRAM with host/FPGA ownership arbitration.

The Celoxica RC1000 card carries 8 MB of SRAM "accessible from both a
host/PCI peer and the Virtex FPGA with suitable arbitration (between
the FPGA and host-PCI peer) provided by the firmware" (Section 4.3).
Section 5.2 identifies this arbitration as the performance bottleneck:
"the Celoxica card has a SRAM bank which needs to switch ownership
between FPGA and Stream processor each time a transfer is made, which
is generally the bottleneck for high-performance PCI transfers".

:class:`BankedSRAM` models that: each bank has a current owner, access
by the other side first pays a fixed ownership-switch cost, and the
model counts switches and words moved so experiments can attribute
overhead.  Banked layout enables the concurrency the paper exploits
(the stream processor fills one bank while the scheduler reads another).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Owner", "BankStats", "SRAMBank", "BankedSRAM"]


class Owner(enum.Enum):
    """Which side currently owns a bank."""

    HOST = "host"
    FPGA = "fpga"


@dataclass(slots=True)
class BankStats:
    """Access accounting for one bank."""

    ownership_switches: int = 0
    words_written: int = 0
    words_read: int = 0
    switch_time_us: float = 0.0


class SRAMBank:
    """One SRAM bank: word storage + ownership arbitration.

    Parameters
    ----------
    words:
        Capacity in 32-bit words.
    switch_cost_us:
        Fixed time an ownership handoff takes (firmware arbitration).
    """

    def __init__(
        self,
        words: int,
        *,
        switch_cost_us: float = 1.0,
        owner: Owner = Owner.HOST,
    ) -> None:
        if words <= 0:
            raise ValueError("bank capacity must be positive")
        if switch_cost_us < 0:
            raise ValueError("switch cost must be non-negative")
        self.words = words
        self.switch_cost_us = switch_cost_us
        self.owner = owner
        self.stats = BankStats()
        self._mem: dict[int, int] = {}

    def _arbitrate(self, requester: Owner) -> float:
        """Acquire ownership for ``requester``; returns the time cost."""
        if self.owner is requester:
            return 0.0
        self.owner = requester
        self.stats.ownership_switches += 1
        self.stats.switch_time_us += self.switch_cost_us
        return self.switch_cost_us

    def _check_range(self, address: int, count: int = 1) -> None:
        if address < 0 or address + count > self.words:
            raise IndexError(
                f"access [{address}, {address + count}) outside bank of "
                f"{self.words} words"
            )

    def write(self, requester: Owner, address: int, values: list[int]) -> float:
        """Write words starting at ``address``; returns arbitration cost."""
        self._check_range(address, len(values))
        cost = self._arbitrate(requester)
        for offset, value in enumerate(values):
            self._mem[address + offset] = value & 0xFFFFFFFF
        self.stats.words_written += len(values)
        return cost

    def read(self, requester: Owner, address: int, count: int = 1) -> tuple[list[int], float]:
        """Read ``count`` words; returns (values, arbitration cost)."""
        self._check_range(address, count)
        cost = self._arbitrate(requester)
        values = [self._mem.get(address + i, 0) for i in range(count)]
        self.stats.words_read += count
        return values, cost


class BankedSRAM:
    """The card's SRAM as independently-arbitrated banks.

    Two banks suffice for the ping-pong pattern the paper describes
    (host fills one while the FPGA drains the other); the count is a
    parameter so the ablation bench can sweep it.
    """

    def __init__(
        self,
        n_banks: int = 2,
        words_per_bank: int = 1 << 20,
        *,
        switch_cost_us: float = 1.0,
    ) -> None:
        if n_banks <= 0:
            raise ValueError("need at least one bank")
        self.banks = [
            SRAMBank(words_per_bank, switch_cost_us=switch_cost_us)
            for _ in range(n_banks)
        ]

    def bank(self, index: int) -> SRAMBank:
        """Bank by index."""
        return self.banks[index]

    @property
    def total_switches(self) -> int:
        """Ownership switches across all banks."""
        return sum(b.stats.ownership_switches for b in self.banks)

    @property
    def total_switch_time_us(self) -> float:
        """Total arbitration time paid across all banks."""
        return sum(b.stats.switch_time_us for b in self.banks)
