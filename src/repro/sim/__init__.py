"""Discrete-event simulation substrate for the system realizations."""

from repro.sim.engine import Event, Simulator
from repro.sim.nic import GIGABIT, TEN_GIGABIT, Link, TxPort
from repro.sim.pci import PCIBus, PCIConfig, TransferRecord
from repro.sim.ring import ArrivalRing, CircularQueue
from repro.sim.sram import BankedSRAM, BankStats, Owner, SRAMBank
# Import from the canonical home, not the deprecated repro.sim.trace
# shim, so `import repro.sim` stays warning-free.
from repro.observability.tracelog import TraceEvent, TraceLog

__all__ = [
    "ArrivalRing",
    "BankStats",
    "BankedSRAM",
    "CircularQueue",
    "Event",
    "GIGABIT",
    "Link",
    "Owner",
    "PCIBus",
    "PCIConfig",
    "SRAMBank",
    "Simulator",
    "TEN_GIGABIT",
    "TraceEvent",
    "TraceLog",
    "TransferRecord",
    "TxPort",
]
