"""Merging worker-shard telemetry back into one observability facade.

A worker process cannot share the caller's
:class:`~repro.observability.Observability` (hooks are plain Python
objects, not shared memory), so parallel experiment drivers give each
worker its *own* metrics registry + conformance monitor, ship the
results back as plain dicts, and the parent folds them together here:

* metrics registries merge via
  :meth:`~repro.observability.metrics.MetricsRegistry.absorb`
  (counters/histograms add, gauges last-write-wins in shard order);
* rollup windows and violation lists merge via
  :meth:`~repro.observability.monitor.ConformanceMonitor.absorb_state`
  (window indices re-based to stay monotonic).

Shards are always absorbed **in item order**, never completion order,
so the merged telemetry is a pure function of the workload — identical
for any worker count.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = [
    "telemetry_shard",
    "absorb_telemetry",
    "monitor_spec",
    "build_worker_observability",
]


def telemetry_shard(observability: Any) -> dict[str, Any] | None:
    """Export one worker's telemetry as a picklable/JSON-able dict."""
    if observability is None:
        return None
    shard: dict[str, Any] = {}
    metrics = getattr(observability, "metrics", None)
    if metrics is not None:
        shard["metrics"] = metrics.snapshot()
    monitor = getattr(observability, "monitor", None)
    if monitor is not None:
        shard["monitor"] = monitor.state_dict()
    return shard


def absorb_telemetry(
    observability: Any, shards: Iterable[Mapping[str, Any] | None]
) -> None:
    """Fold worker telemetry shards into the caller's facade, in order."""
    if observability is None:
        return
    for shard in shards:
        if not shard:
            continue
        metrics = getattr(observability, "metrics", None)
        if metrics is not None and "metrics" in shard:
            metrics.absorb(shard["metrics"])
        monitor = getattr(observability, "monitor", None)
        if monitor is not None and "monitor" in shard:
            monitor.absorb_state(shard["monitor"])


def monitor_spec(observability: Any) -> dict[str, Any] | None:
    """Picklable recipe for rebuilding a worker-side conformance monitor.

    Captures the declarative part of the caller's monitor (SLOs and
    window size).  Flight recording stays parent-side: worker dumps
    would interleave nondeterministically on disk.
    """
    monitor = getattr(observability, "monitor", None)
    if monitor is None:
        return None
    from dataclasses import asdict

    return {
        "slos": [asdict(slo) for slo in monitor.slo.slos.values()],
        "window_cycles": monitor.rollup.window_cycles,
    }


def build_worker_observability(spec: Mapping[str, Any] | None):
    """Worker-side counterpart of :func:`monitor_spec`.

    ``spec`` is ``{"monitor": <monitor_spec or None>}``-style metadata;
    returns a fresh :class:`~repro.observability.Observability` with
    metrics enabled, tracing/profiling off (traces are ring buffers of
    per-cycle events — shipping them across process boundaries would
    cost more than the run; drivers that need traces run sequentially).
    """
    if spec is None:
        return None
    from repro.observability import (
        ConformanceMonitor,
        Observability,
        StreamSlo,
    )

    observability = Observability(trace=False, profile=False)
    mon = spec.get("monitor")
    if mon is not None:
        observability.monitor = ConformanceMonitor(
            [StreamSlo(**slo) for slo in mon["slos"]],
            window_cycles=mon["window_cycles"],
            registry=observability.metrics,
            flight_recorder=False,
        )
    return observability
