"""Multi-core sharded execution of seed-indexed workloads.

The simulation harness is full of *embarrassingly parallel* campaigns:
one independent scenario per seed (differential cross-validation, SLO
false-positive runs), one independent configuration per sweep point
(Table 3's three configurations, the Figure 8/9/10 scale sweeps, the
isolation seeds).  :func:`run_sharded` fans such a workload out across
worker processes while keeping the merged output *bit-identical to a
sequential run*:

* items are dealt round-robin onto ``workers`` shards, each shard runs
  its items in order in one worker process, and the parent reassembles
  per-item results **by original index** — the merged result stream is
  a pure function of the inputs, independent of worker count or OS
  scheduling;
* every item carries its own seed/configuration (deterministic
  per-shard seeding falls out of sharding the seed list itself — no
  shared RNG state crosses a process boundary);
* a shard that *dies* (non-zero exit, lost result file) is isolated:
  the parent reports exactly which items were lost in a
  :class:`ShardFailure` and still merges every surviving shard.  An
  item that merely *raises* is likewise recorded per item without
  sinking its shard;
* an optional :class:`~repro.runner.cache.ResultCache` short-circuits
  items whose canonical key already has a stored result, so a warm
  re-run executes nothing.

Degradation is graceful: ``workers=1``, a single pending item, or a
platform without ``fork``/``spawn`` support all run in-process with
identical semantics (same ordering, same failure reporting, same cache
behavior).

Tasks must be module-level callables with picklable arguments and
results — the same contract ``multiprocessing`` itself imposes.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.observability.spans import SpanTracer, activate_tracer
from repro.runner.cache import ResultCache

__all__ = [
    "ShardFailure",
    "PoolResult",
    "available_parallelism",
    "resolve_workers",
    "start_method",
    "run_sharded",
]


@dataclass(frozen=True, slots=True)
class ShardFailure:
    """Items lost to one failure (a dead shard or a raising item)."""

    shard: int
    items: tuple[Any, ...]
    error: str
    exitcode: int | None = None

    def describe(self) -> str:
        """Human-readable one-liner for campaign reports."""
        what = (
            f"exitcode {self.exitcode}" if self.exitcode is not None else "error"
        )
        last = self.error.strip().splitlines()[-1] if self.error.strip() else ""
        return f"shard {self.shard} ({what}): items {list(self.items)} — {last}"


@dataclass(slots=True)
class PoolResult:
    """Merged output of one sharded run.

    ``results`` is index-aligned with the input items; positions whose
    item failed (or whose shard died) hold ``None`` and are listed in
    ``failures``.
    """

    results: list[Any]
    failures: list[ShardFailure] = field(default_factory=list)
    workers: int = 1
    cached: int = 0
    executed: int = 0

    @property
    def ok(self) -> bool:
        """True when every item produced a result."""
        return not self.failures

    def failed_items(self) -> list[Any]:
        """Every item lost to a failure, in input order of reporting."""
        out: list[Any] = []
        for failure in self.failures:
            out.extend(failure.items)
        return out


def available_parallelism() -> int:
    """Usable CPU count (>= 1)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker request: ``None``/``0`` means all cores."""
    if workers is None or workers <= 0:
        return available_parallelism()
    return workers


def start_method() -> str | None:
    """Preferred multiprocessing start method, ``None`` if unsupported.

    ``fork`` is preferred (no re-import, tasks defined anywhere in an
    importable module work); ``spawn`` / ``forkserver`` are accepted
    fallbacks.  ``None`` routes execution in-process.
    """
    try:
        methods = multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platform
        return None
    for preferred in ("fork", "spawn", "forkserver"):
        if preferred in methods:
            return preferred
    return None


def _traced_item(
    tracer: SpanTracer,
    task: Callable[..., Any],
    task_args: tuple,
    index: int,
    item: Any,
    span_name: str,
    span_kind: str,
    item_tags: dict[str, Any],
    lane: int,
) -> tuple[str, Any]:
    """Run one item inside its span; the span path is pinned to the
    item's *original input index* so worker layout never shifts it."""
    with tracer.span(span_name, kind=span_kind, ordinal=index, **item_tags) as sp:
        if lane:
            sp.measures["lane"] = lane
        with activate_tracer(tracer):
            try:
                result: tuple[str, Any] = ("ok", task(item, *task_args))
            except Exception:
                result = ("err", traceback.format_exc())
        sp.tag(status=result[0])
    return result


def _shard_main(
    task: Callable[..., Any],
    task_args: tuple,
    indexed_items: list[tuple[int, Any]],
    out_path: str,
    span_ctx: dict[str, Any] | None = None,
    span_name: str = "item",
    span_kind: str = "item",
    item_tags: dict[str, Any] | None = None,
    shard: int = 0,
) -> None:
    """Worker body: run one shard's items in order, write results once.

    Per-item exceptions are captured as ``("err", traceback)`` entries;
    a hard crash (signal, ``os._exit``) leaves no result file and is
    detected by the parent via the exit code.  With a propagated trace
    context, item spans are recorded worker-side and shipped back in the
    same payload as the results (merged index-ordered by the parent).
    """
    tracer = SpanTracer.from_context(span_ctx) if span_ctx is not None else None
    t0 = time.perf_counter()
    results: list[tuple[int, str, Any]] = []
    for index, item in indexed_items:
        if tracer is None:
            try:
                results.append((index, "ok", task(item, *task_args)))
            except Exception:
                results.append((index, "err", traceback.format_exc()))
        else:
            status, payload = _traced_item(
                tracer, task, task_args, index, item,
                span_name, span_kind, item_tags or {}, shard + 1,
            )
            results.append((index, status, payload))
    payload_out: dict[str, Any] = {"results": results}
    if tracer is not None:
        # Shard spans describe execution layout, not workload: flagged
        # non-canonical so canonical output stays worker-count-invariant.
        tracer.record_span(
            "shard",
            kind="shard",
            ordinal=shard,
            canonical=False,
            tags={"items": len(indexed_items)},
            measures={
                "lane": shard + 1,
                "wall_us": int((time.perf_counter() - t0) * 1e6),
            },
        )
        payload_out["spans"] = tracer.export_records()
    tmp = out_path + ".tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(payload_out, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, out_path)


def _run_inprocess(
    task: Callable[..., Any],
    task_args: tuple,
    indexed_items: list[tuple[int, Any]],
    results: list[Any],
    failures: list[ShardFailure],
    completed: set[int],
    tracer: SpanTracer | None = None,
    span_name: str = "item",
    span_kind: str = "item",
    item_tags: dict[str, Any] | None = None,
) -> None:
    """Sequential fallback with the exact shard semantics."""
    t0 = time.perf_counter()
    for index, item in indexed_items:
        if tracer is None:
            try:
                results[index] = task(item, *task_args)
                completed.add(index)
            except Exception:
                failures.append(
                    ShardFailure(
                        shard=0, items=(item,), error=traceback.format_exc()
                    )
                )
        else:
            status, payload = _traced_item(
                tracer, task, task_args, index, item,
                span_name, span_kind, item_tags or {}, 0,
            )
            if status == "ok":
                results[index] = payload
                completed.add(index)
            else:
                failures.append(
                    ShardFailure(shard=0, items=(item,), error=str(payload))
                )
    if tracer is not None and indexed_items:
        tracer.record_span(
            "shard",
            kind="shard",
            ordinal=0,
            canonical=False,
            tags={"items": len(indexed_items)},
            measures={"wall_us": int((time.perf_counter() - t0) * 1e6)},
        )


def _run_processes(
    task: Callable[..., Any],
    task_args: tuple,
    indexed_items: list[tuple[int, Any]],
    n_shards: int,
    method: str,
    results: list[Any],
    failures: list[ShardFailure],
    completed: set[int],
    tracer: SpanTracer | None = None,
    span_name: str = "item",
    span_kind: str = "item",
    item_tags: dict[str, Any] | None = None,
) -> None:
    """Fan shards out onto worker processes and merge by index."""
    ctx = multiprocessing.get_context(method)
    shards = [indexed_items[s::n_shards] for s in range(n_shards)]
    shards = [shard for shard in shards if shard]
    span_ctx = tracer.context() if tracer is not None else None
    with tempfile.TemporaryDirectory(prefix="repro-runner-") as tmpdir:
        procs: list[tuple[int, Any, str, list[tuple[int, Any]]]] = []
        for s, shard in enumerate(shards):
            out_path = str(Path(tmpdir) / f"shard-{s}.pkl")
            proc = ctx.Process(
                target=_shard_main,
                args=(
                    task, task_args, shard, out_path,
                    span_ctx, span_name, span_kind, item_tags, s,
                ),
                name=f"repro-shard-{s}",
            )
            proc.start()
            procs.append((s, proc, out_path, shard))
        for s, proc, out_path, shard in procs:
            proc.join()
            shard_items = tuple(item for _i, item in shard)
            if proc.exitcode != 0:
                failures.append(
                    ShardFailure(
                        shard=s,
                        items=shard_items,
                        error=f"shard process died with exitcode {proc.exitcode}",
                        exitcode=proc.exitcode,
                    )
                )
                continue
            try:
                with open(out_path, "rb") as fh:
                    shard_payload = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError) as exc:
                failures.append(
                    ShardFailure(
                        shard=s,
                        items=shard_items,
                        error=f"shard result file unreadable: {exc!r}",
                        exitcode=proc.exitcode,
                    )
                )
                continue
            shard_results = shard_payload["results"]
            if tracer is not None:
                # Shards are joined in launch order, so absorbed span
                # records arrive deterministically; canonical output is
                # additionally path-sorted at serialization time.
                tracer.absorb(shard_payload.get("spans", ()))
            by_index = {item_index: item for item_index, item in shard}
            for item_index, status, payload in shard_results:
                if status == "ok":
                    results[item_index] = payload
                    completed.add(item_index)
                else:
                    failures.append(
                        ShardFailure(
                            shard=s,
                            items=(by_index[item_index],),
                            error=str(payload),
                        )
                    )
    # Deterministic report order regardless of process completion order.
    failures.sort(key=lambda f: (f.shard, str(f.items)))


def run_sharded(
    task: Callable[..., Any],
    items: Sequence[Any],
    *,
    workers: int | None = 1,
    task_args: tuple = (),
    cache: ResultCache | None = None,
    cache_key: Callable[[Any], Any] | None = None,
    cache_encode: Callable[[Any], Any] | None = None,
    cache_decode: Callable[[Any], Any] | None = None,
    cache_if: Callable[[Any, Any], bool] | None = None,
    tracer: SpanTracer | None = None,
    span_name: str = "item",
    span_kind: str = "item",
) -> PoolResult:
    """Run ``task(item, *task_args)`` for every item, sharded across cores.

    Parameters
    ----------
    task:
        Module-level callable (picklable); executed once per item.
    items:
        The seed-indexed workload.  Order defines merge order.
    workers:
        Worker processes; ``1`` (default) runs in-process, ``0`` /
        ``None`` uses every available core.  Capped at ``len(items)``.
    cache:
        Optional :class:`ResultCache`.  Requires ``cache_key`` mapping
        an item to its canonical JSON key payload.  ``cache_encode`` /
        ``cache_decode`` convert results to/from the stored JSON value
        (default: identity); ``cache_if(item, result)`` gates writes
        (default: cache everything that succeeded).
    tracer:
        Optional :class:`~repro.observability.spans.SpanTracer`.  Each
        item gets one ``span_name`` span pinned to its input index
        (recorded worker-side, shipped back with the shard payload and
        merged index-ordered); cache hits are recorded parent-side with
        a ``cache=hit`` tag, executed items with ``cache=miss``.  The
        canonical span tree is byte-identical for any worker count.

    Returns
    -------
    PoolResult
        Per-item results in input order, failures, and cache counters.
        The merged ``results`` list is identical for any ``workers``
        value — parallelism is an execution detail, not a semantic one.
    """
    items = list(items)
    results: list[Any] = [None] * len(items)
    failures: list[ShardFailure] = []
    pending: list[tuple[int, Any]] = []
    keys: dict[int, str] = {}
    cached = 0
    if cache is not None:
        if cache_key is None:
            raise ValueError("cache requires cache_key")
        for index, item in enumerate(items):
            key = cache.key(cache_key(item))
            keys[index] = key
            hit, value = cache.get(key)
            if hit:
                results[index] = (
                    cache_decode(value) if cache_decode is not None else value
                )
                cached += 1
                if tracer is not None:
                    tracer.record_span(
                        span_name,
                        kind=span_kind,
                        ordinal=index,
                        tags={"cache": "hit", "status": "ok"},
                    )
            else:
                pending.append((index, item))
    else:
        pending = list(enumerate(items))

    item_tags = {"cache": "miss"} if cache is not None else {}
    completed: set[int] = set()
    n_workers = min(resolve_workers(workers), max(1, len(pending)))
    method = start_method() if n_workers > 1 and len(pending) > 1 else None
    if method is None:
        _run_inprocess(
            task, task_args, pending, results, failures, completed,
            tracer, span_name, span_kind, item_tags,
        )
        n_workers = 1
    else:
        _run_processes(
            task, task_args, pending, n_workers, method, results, failures,
            completed, tracer, span_name, span_kind, item_tags,
        )
    if tracer is not None and tracer.current is not None:
        # Execution layout on the enclosing span: measures only, so the
        # canonical tree stays independent of worker count/cache state.
        tracer.current.measure(
            workers=n_workers, cached=cached, executed=len(pending)
        )

    if cache is not None:
        for index, item in pending:
            if index not in completed:
                continue
            result = results[index]
            if cache_if is not None and not cache_if(item, result):
                continue
            value = (
                cache_encode(result) if cache_encode is not None else result
            )
            cache.put(keys[index], value)

    return PoolResult(
        results=results,
        failures=failures,
        workers=n_workers,
        cached=cached,
        executed=len(pending),
    )
