"""On-disk result cache for seed-indexed campaign workloads.

Repeated campaigns (the 200-scenario differential cross-validation,
the figure sweeps, the SLO false-positive runs) revalidate scenarios
whose inputs have not changed.  :class:`ResultCache` memoizes each
scenario's *merged-summary contribution* on disk, keyed by a canonical
hash of everything that determines the result:

* the fully-resolved scenario/config payload (not just the seed — a
  generator change that alters the derived scenario changes the key),
* the workload namespace (differential outcome vs trace mode, sweep
  kind, ...),
* a code-version token: the ``repro`` package version plus the cache
  schema version (:data:`CACHE_SCHEMA`).

Entries are single JSON files under ``root/<namespace>/<k[:2]>/<k>.json``
written atomically (temp file + ``os.replace``), so concurrent readers
never observe a torn entry and an interrupted run never corrupts the
cache.  Unreadable or malformed entries are treated as misses and
deleted.  The cache stores only *successful* results — callers gate
writes (e.g. the differential campaign never caches a divergent seed,
so failures are always revalidated).

In CI the cache directory itself is keyed by a hash of the source tree
(``actions/cache`` with ``hashFiles('src/**')``), which invalidates
every entry on any code change even when the package version string
does not move; see ``docs/RUNNER.md`` for the invalidation rules.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["CACHE_SCHEMA", "CacheStats", "ResultCache"]

#: Bump when the cached-entry layout or the summary semantics change.
#: 2: tensor-engine campaign paths landed; pre-tensor entries (which
#: predate the per-engine key payloads) are invalidated wholesale so
#: batch- and tensor-path results can never be conflated.
#: 3: aggregation-tier runs landed; keys must carry the aggregate
#: topology (aggregate count, bucketing salt, intra discipline), so
#: every pre-aggregation entry — which lacks those payload fields — is
#: invalidated wholesale and a cached non-aggregated campaign result
#: can never satisfy an aggregated lookup.
CACHE_SCHEMA = 3


def _package_version() -> str:
    from repro import __version__

    return __version__


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/write accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
        }


@dataclass(slots=True)
class ResultCache:
    """Content-addressed JSON store for per-scenario results.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).
    namespace:
        Workload family; distinct namespaces never share entries.
    version:
        Code-version token folded into every key.  Defaults to
        ``"<repro version>/<CACHE_SCHEMA>"``.
    """

    root: Path
    namespace: str = "default"
    version: str | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.version is None:
            self.version = f"{_package_version()}/{CACHE_SCHEMA}"

    # -- keying --------------------------------------------------------

    def key(self, payload: Any) -> str:
        """Canonical hash of ``(namespace, version, payload)``.

        ``payload`` must be JSON-serializable; it should contain every
        input that determines the result (resolved scenario config,
        engine selection, workload parameters).
        """
        canonical = json.dumps(
            [self.namespace, self.version, payload],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / self.namespace / key[:2] / f"{key}.json"

    # -- lookup / store ------------------------------------------------

    def get(self, key: str) -> tuple[bool, Any]:
        """``(hit, value)`` for ``key``; corrupt entries count as misses."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            value = entry["value"]
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except (OSError, ValueError, KeyError, TypeError):
            # Torn/malformed entry: drop it so it cannot mask results.
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` (JSON-serializable) under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"key": key, "value": value}, sort_keys=True, separators=(",", ":")
        )
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            self.stats.errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
