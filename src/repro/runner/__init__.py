"""Multi-core sharded campaign runner with on-disk result caching.

``repro.runner`` is the execution substrate under every seed-indexed
campaign in the harness — the differential cross-validation, the
figure sweeps, the isolation seeds, the SLO false-positive runs.  It
separates the *workload* (a task applied to an ordered item list) from
the *execution plan* (in-process, or sharded round-robin across worker
processes), with three guarantees:

1. **Determinism** — merged results are index-ordered and therefore
   bit-identical for any worker count (see ``docs/RUNNER.md``).
2. **Failure isolation** — a dying shard or raising item is reported
   with exactly the items it took down; everything else still merges.
3. **Idempotence** — an optional content-addressed
   :class:`~repro.runner.cache.ResultCache` skips items whose
   canonical (config, engine, code-version) hash already has a stored
   result.

Entry points: :func:`run_sharded` (generic),
:func:`~repro.core.differential.campaign` (``workers=`` /
``cache_dir=``), the sweep drivers in :mod:`repro.experiments.sweeps`,
and the ``--workers`` / ``--cache-dir`` / ``--no-cache`` CLI flags.
"""

from repro.runner.cache import CACHE_SCHEMA, CacheStats, ResultCache
from repro.runner.merge import (
    absorb_telemetry,
    build_worker_observability,
    monitor_spec,
    telemetry_shard,
)
from repro.runner.pool import (
    PoolResult,
    ShardFailure,
    available_parallelism,
    resolve_workers,
    run_sharded,
    start_method,
)

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "PoolResult",
    "ResultCache",
    "ShardFailure",
    "absorb_telemetry",
    "available_parallelism",
    "build_worker_observability",
    "monitor_spec",
    "resolve_workers",
    "run_sharded",
    "start_method",
    "telemetry_shard",
]
