"""ShareStreams QoS architecture reproduction (IPPS 2003).

A behavioral, laptop-scale reproduction of *"Leveraging Block Decisions
and Aggregation in the ShareStreams QoS Architecture"* (Krishnamurthy,
Yalamanchili, Schwan, West): a unified canonical architecture for
priority-class, fair-queuing and window-constrained packet schedulers,
with its Endsystem/host-router and switch line-card realizations.

Sub-packages
------------
``repro.core``
    The canonical scheduler architecture: Register Base blocks,
    Decision blocks, the recirculating shuffle-exchange network, the
    control FSM, and the composed cycle-level scheduler.
``repro.disciplines``
    Pure-software reference scheduling disciplines (DWCS, EDF, static
    priority, WFQ, SFQ, DRR, FCFS) used as baselines and oracles.
``repro.hwmodel``
    Calibrated Virtex FPGA area / clock-rate / throughput models
    (Figure 7, Section 5.2).
``repro.sim``
    Discrete-event simulation substrate: engine, circular queues,
    banked SRAM, PCI bus, NIC/link models.
``repro.endsystem``
    The Endsystem/host-router realization: queue manager, streaming
    unit, transmission engine, streamlet aggregation.
``repro.linecard``
    The switch line-card realization (dual-ported SRAM feed).
``repro.traffic``
    Workload generators (CBR, bursty, Poisson) and stream specs.
``repro.metrics``
    Bandwidth / delay / counter instrumentation and report rendering.
``repro.framework``
    The Section 2 architectural framework: packet-time feasibility and
    implementation-complexity models (Figure 1).
``repro.experiments``
    One driver per table and figure in the paper's evaluation.
"""

from repro.core import (
    ArchConfig,
    BlockMode,
    DecisionOutcome,
    Routing,
    SchedulingMode,
    ShareStreamsScheduler,
    StreamConfig,
)

__version__ = "1.0.0"

__all__ = [
    "ArchConfig",
    "BlockMode",
    "DecisionOutcome",
    "Routing",
    "SchedulingMode",
    "ShareStreamsScheduler",
    "StreamConfig",
    "__version__",
]
