"""Switch line-card realization (Figure 2).

"Dual-ported SRAM allows packets arriving from the switch-fabric to be
placed in per-stream SRAM queues.  Their arrival times can be read by
the SRAM interface concurrently.  Winner Stream IDs are written into
the SRAM partition by the SRAM interface." (Section 4.2.)

Unlike the endsystem path there is no PCI bus and no host software on
the critical path — the dual-ported memory gives the scheduler
single-cycle access to arrival times, so the line-card runs decisions
back-to-back at the FPGA clock.  That is where the paper's headline
7.6 million packets/second (4 slots, Virtex-I) comes from; this module
couples the cycle-level behavioral scheduler to the calibrated clock
model to regenerate it, and to produce Stream-ID sequences for QoS
checks at line rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import StreamConfig
from repro.core.config import ArchConfig, Routing
from repro.core.scheduler import ShareStreamsScheduler
from repro.hwmodel.timing import clock_rate_mhz, decision_cycles

__all__ = ["LinecardResult", "Linecard", "FabricLinecard"]


@dataclass(frozen=True, slots=True)
class LinecardResult:
    """Outcome of a line-card run."""

    decisions: int
    packets_scheduled: int
    hw_cycles: int
    clock_mhz: float
    winner_sequence: tuple[int, ...]

    @property
    def elapsed_us(self) -> float:
        """Wall time the run takes at the modeled clock."""
        return self.hw_cycles / self.clock_mhz

    @property
    def throughput_pps(self) -> float:
        """Scheduled packets per second."""
        if self.hw_cycles == 0:
            return 0.0
        return self.packets_scheduled / self.elapsed_us * 1e6


class Linecard:
    """Behavioral line-card: fabric-fed scheduler at FPGA clock rate.

    Parameters
    ----------
    arch:
        Scheduler architecture configuration.
    streams:
        Stream constraints bound to the slots.
    observer:
        Telemetry hook forwarded to the scheduler (per-decision
        events/metrics); an :class:`repro.observability.Observability`
        additionally gets the run's modeled hardware cycles attributed
        to a ``linecard.decide`` profiling phase.
    """

    def __init__(
        self,
        arch: ArchConfig,
        streams: list[StreamConfig],
        *,
        observer=None,
    ) -> None:
        self.arch = arch
        self.observer = observer
        self.scheduler = ShareStreamsScheduler(arch, streams, observer=observer)
        self.clock_mhz = clock_rate_mhz(arch.n_slots, arch.routing)
        self.cycles_per_decision = decision_cycles(
            arch.n_slots, schedule=arch.schedule
        )

    def feed(self, sid: int, deadline: int, arrival: int, length: int = 64) -> None:
        """Switch fabric deposits one packet's arrival record."""
        self.scheduler.enqueue(sid, deadline=deadline, arrival=arrival, length=length)

    def run(
        self,
        n_decisions: int,
        *,
        consume: str = "winner",
        record_winners: bool = False,
    ) -> LinecardResult:
        """Run ``n_decisions`` back-to-back decision cycles.

        ``consume="block"`` (with BA routing) emits the whole sorted
        block per decision — the factor-of-block-size throughput gain.
        """
        winners: list[int] = []
        packets = 0
        for t in range(n_decisions):
            outcome = self.scheduler.decision_cycle(
                t, consume=consume, count_misses=False
            )
            packets += len(outcome.serviced)
            if record_winners and outcome.circulated_sid is not None:
                winners.append(outcome.circulated_sid)
        self._attribute_cycles(n_decisions * self.cycles_per_decision)
        return LinecardResult(
            decisions=n_decisions,
            packets_scheduled=packets,
            hw_cycles=n_decisions * self.cycles_per_decision,
            clock_mhz=self.clock_mhz,
            winner_sequence=tuple(winners),
        )

    def _attribute_cycles(self, hw_cycles: int) -> None:
        """Credit modeled hardware cycles to the telemetry profiler."""
        profiler = getattr(self.observer, "profiler", None)
        if profiler is not None:
            profiler.add_cycles("linecard.decide", hw_cycles)
        finalize = getattr(self.observer, "finalize", None)
        if finalize is not None:
            finalize()  # flush the conformance monitor's partial window

    def model_throughput_pps(self, *, block: bool = False) -> float:
        """Analytic throughput (no behavioral run), for cross-checks."""
        per_decision = self.arch.n_slots if block else 1
        return self.clock_mhz * 1e6 / self.cycles_per_decision * per_decision

    def wire_speed_utilization(
        self, rate_bps: float, length_bytes: int, *, block: bool = False
    ) -> float:
        """Link utilization the scheduler sustains at a line rate.

        1.0 means a decision completes within every packet-time (full
        utilization); below 1.0 the link idles waiting on decisions —
        the failure mode Section 1 warns about.
        """
        packet_time_us = length_bytes * 8 / rate_bps * 1e6
        decision_us = self.cycles_per_decision / self.clock_mhz
        per_packet_us = decision_us / (self.arch.n_slots if block else 1)
        return min(1.0, packet_time_us / per_packet_us)


class FabricLinecard(Linecard):
    """Line-card driven from dual-ported SRAM (the full Figure 2 path).

    Arrival times flow fabric → SRAM partitions → Register Base block
    queues; winner Stream IDs flow back into the SRAM output partition
    for the network transceiver.  Per-stream deadlines are generated as
    ``arrival + period`` (the card's deadline-assignment logic).
    """

    def __init__(
        self,
        arch: ArchConfig,
        streams: list[StreamConfig],
        *,
        observer=None,
    ) -> None:
        from repro.linecard.fabric import DualPortedSRAM

        super().__init__(arch, streams, observer=observer)
        self.sram = DualPortedSRAM(arch.n_slots)
        self._periods = {s.sid: s.period for s in streams}

    def pump(self, n_decisions: int, *, consume: str = "winner") -> LinecardResult:
        """Move arrivals in, decide, and emit winner IDs out.

        Each decision cycle the SRAM interface tops up every slot from
        its partition (dual-ported: no arbitration cost), then the
        scheduler decides and the winner ID is written to the output
        partition.
        """
        winners: list[int] = []
        packets = 0
        for t in range(n_decisions):
            for sid in range(self.arch.n_slots):
                slot = self.scheduler.slots[sid]
                if slot is None:
                    continue
                while slot.backlog < 8:
                    arrival = self.sram.consume(sid)
                    if arrival is None:
                        break
                    self.scheduler.enqueue(
                        sid,
                        deadline=(arrival + self._periods.get(sid, 1)) & 0xFFFF
                        if self.arch.wrap
                        else arrival + self._periods.get(sid, 1),
                        arrival=arrival,
                    )
            outcome = self.scheduler.decision_cycle(
                t, consume=consume, count_misses=False
            )
            packets += len(outcome.serviced)
            if outcome.circulated_sid is not None:
                self.sram.emit_winner(outcome.circulated_sid)
                winners.append(outcome.circulated_sid)
        self._attribute_cycles(n_decisions * self.cycles_per_decision)
        return LinecardResult(
            decisions=n_decisions,
            packets_scheduled=packets,
            hw_cycles=n_decisions * self.cycles_per_decision,
            clock_mhz=self.clock_mhz,
            winner_sequence=tuple(winners),
        )
