"""Switch-fabric side of the line-card realization (Figure 2).

"Dual-ported SRAM allows packets arriving from the switch-fabric to be
placed in per-stream SRAM queues.  Their arrival times can be read by
the SRAM interface concurrently.  Winner Stream IDs are written into
the SRAM partition by the SRAM interface, which are provided by the
Scheduler control unit."

:class:`DualPortedSRAM` models the memory between fabric and scheduler:
both ports access concurrently (no ownership arbitration — the
endsystem's bank-switching bottleneck does not exist here, which is
exactly why the line-card reaches wire speed).  It holds per-stream
arrival-time queues and the winner Stream-ID output partition.
:class:`SwitchFabric` deposits arriving packets into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.ring import ArrivalRing

__all__ = ["DualPortedSRAM", "SwitchFabric", "FabricStats"]


@dataclass(slots=True)
class FabricStats:
    """Arrival accounting on the fabric port."""

    packets_deposited: int = 0
    packets_dropped_full: int = 0
    ids_emitted: int = 0


class DualPortedSRAM:
    """Per-stream arrival-time queues + Stream-ID output partition.

    Parameters
    ----------
    n_streams:
        Per-stream queue (partition) count.
    queue_depth:
        16-bit arrival-time slots per stream partition.
    id_partition_depth:
        Winner Stream-ID slots in the output partition.
    """

    def __init__(
        self,
        n_streams: int,
        *,
        queue_depth: int = 1024,
        id_partition_depth: int = 4096,
    ) -> None:
        if n_streams <= 0:
            raise ValueError("need at least one stream partition")
        self.queues: dict[int, ArrivalRing] = {
            sid: ArrivalRing(queue_depth) for sid in range(n_streams)
        }
        self.id_partition = ArrivalRing(id_partition_depth)
        self.stats = FabricStats()

    # fabric port --------------------------------------------------------

    def deposit(self, sid: int, arrival_time: int) -> bool:
        """Fabric port: place one packet's arrival time (concurrent)."""
        ok = self.queues[sid].push(arrival_time & 0xFFFF)
        if ok:
            self.stats.packets_deposited += 1
        else:
            self.stats.packets_dropped_full += 1
        return ok

    # scheduler port -----------------------------------------------------

    def head_arrival(self, sid: int) -> int | None:
        """Scheduler port: peek a stream's oldest arrival time."""
        return self.queues[sid].peek()

    def consume(self, sid: int) -> int | None:
        """Scheduler port: pop a stream's oldest arrival time."""
        return self.queues[sid].pop()

    def backlog(self, sid: int) -> int:
        """Packets queued in one stream partition."""
        return len(self.queues[sid])

    def emit_winner(self, sid: int) -> bool:
        """Scheduler port: write one winner Stream ID for the
        transceiver to pick up."""
        ok = self.id_partition.push(sid & 0x1F)
        if ok:
            self.stats.ids_emitted += 1
        return ok

    def drain_ids(self, n: int):
        """Transceiver side: read up to ``n`` scheduled Stream IDs."""
        return self.id_partition.pop_batch(n)


class SwitchFabric:
    """Arrival source feeding the dual-ported SRAM from per-stream
    arrival-time arrays (vectorized deposit)."""

    def __init__(self, sram: DualPortedSRAM) -> None:
        self.sram = sram

    def offer(self, sid: int, arrival_times) -> int:
        """Deposit a batch of arrivals for one stream; returns count
        accepted before the partition filled."""
        accepted = 0
        for t in arrival_times:
            if not self.sram.deposit(sid, int(t)):
                break
            accepted += 1
        return accepted
