"""Switch line-card realization of the ShareStreams architecture."""

from repro.linecard.fabric import DualPortedSRAM, FabricStats, SwitchFabric
from repro.linecard.linecard import FabricLinecard, Linecard, LinecardResult

__all__ = [
    "DualPortedSRAM",
    "FabricLinecard",
    "FabricStats",
    "Linecard",
    "LinecardResult",
    "SwitchFabric",
]
